"""The explicit engine-backend registry.

Engine selection used to be implicit: string matching in
``repro.fuzz.differential.ENGINE_PAIRS``, a hand-maintained
``BATCHABLE_ALGORITHMS`` tuple in ``repro.experiments.sweep``, and an
identity check picking the batched fuzz path.  Each new backend widened
that scattered dispatch surface.  This module replaces it with one
declaration: every backend is a :class:`BackendSpec` naming its
capabilities (``supports_faults``, ``supports_batch``,
``bit_identical_to``) and, per canonical algorithm, an
:class:`AlgorithmSupport` entry — supported or explicitly not, with the
sweep algorithm names and batchability it provides.  Consumers resolve
through the registry:

* the sweep derives :data:`~repro.experiments.sweep.BATCHABLE_ALGORITHMS`
  from :func:`batchable_sweep_algorithms` and picks each cell's recorder
  engine label via :func:`backend_of_sweep_algorithm`;
* the fuzz runner resolves its pair registry per backend through
  :func:`repro.fuzz.differential.pairs_for_backend` and its batched
  dispatch by name + value equality (never identity);
* ``repro-cli backends`` renders the table, including the compiled
  backend's availability (``compiled: unavailable`` when numba is
  absent — the numpy fallback still runs, bit-identically).

Errors are structured, never bare ``KeyError``:
:class:`UnknownBackendError` for names outside the registry,
:class:`CapabilityError` for requests a known backend cannot serve
(faults on a backend without ``supports_faults``, an algorithm it
declares unsupported).  :func:`consistency_report` cross-checks every
name list the registry replaces and is pinned green by
``tests/test_registry.py`` — a future backend that forgets to declare
itself fails the suite, not a user's sweep.

The five canonical algorithms are :data:`ALGORITHMS`; every backend
must declare an entry for each (``supported=False`` with a ``note`` is
a declaration too — silence is what the consistency check forbids).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from .compiled import NUMBA_AVAILABLE, NUMBA_UNAVAILABLE_REASON

#: The canonical algorithm families every backend must declare.
ALGORITHMS: tuple[str, ...] = (
    "classic",
    "defective_split",
    "fk24",
    "greedy",
    "linial",
)


class BackendError(Exception):
    """Base of every registry-resolution error (never a bare KeyError)."""


class UnknownBackendError(BackendError):
    """The requested backend name is not in the registry."""


class CapabilityError(BackendError):
    """A known backend cannot serve the requested capability."""


@dataclass(frozen=True)
class AlgorithmSupport:
    """One backend's declaration for one canonical algorithm.

    ``sweep_names`` are the :mod:`repro.experiments.sweep` algorithm
    names this backend serves for the family; ``batched`` marks the
    names as batchable (block-diagonal execution).  ``supported=False``
    entries carry a ``note`` saying why — an explicit refusal, so the
    consistency check can tell "declared unsupported" from "forgotten".
    """

    supported: bool = True
    batched: bool = False
    sweep_names: tuple[str, ...] = ()
    note: str = ""


@dataclass(frozen=True)
class BackendSpec:
    """One execution backend and its capability surface.

    ``engine`` is the :class:`~repro.obs.RunRecorder` engine label runs
    on this backend carry; ``bit_identical_to`` names the backend whose
    outputs, metrics, and per-round records this one must reproduce
    exactly (the standing equivalence contract).  ``supports_serve``
    marks a backend whose kernels the :mod:`repro.serve` continuous-
    batching daemon can schedule on — it requires round-stepped
    execution with mid-run membership changes, which drain-style
    drivers (reference, compiled) do not expose.  ``available`` is the
    backend's *native* availability — the compiled backend stays usable
    when numba is absent (its numpy fallback is part of the contract),
    it just reports ``available=False`` with the reason.
    """

    name: str
    description: str
    engine: str
    supports_faults: bool
    supports_batch: bool
    supports_serve: bool
    bit_identical_to: str | None
    algorithms: Mapping[str, AlgorithmSupport] = field(default_factory=dict)
    available: bool = True
    unavailable_reason: str | None = None

    def algorithm_support(self, algorithm: str) -> AlgorithmSupport:
        """The declared entry for ``algorithm`` (structured errors)."""
        entry = self.algorithms.get(algorithm)
        if entry is None:
            raise CapabilityError(
                f"backend {self.name!r} declares no entry for algorithm "
                f"{algorithm!r}; known algorithms: {', '.join(ALGORITHMS)}"
            )
        return entry


def _spec(name, description, engine, *, faults, batch, serve=False,
          identical_to, algorithms, available=True,
          unavailable_reason=None) -> BackendSpec:
    return BackendSpec(
        name=name,
        description=description,
        engine=engine,
        supports_faults=faults,
        supports_batch=batch,
        supports_serve=serve,
        bit_identical_to=identical_to,
        algorithms=MappingProxyType(dict(algorithms)),
        available=available,
        unavailable_reason=unavailable_reason,
    )


#: The registry.  Insertion order is the canonical display order.
BACKENDS: dict[str, BackendSpec] = {
    "reference": _spec(
        "reference",
        "per-message reference simulator (SyncNetwork); the baseline "
        "every other backend must reproduce",
        "reference",
        faults=True,
        batch=False,
        identical_to=None,
        algorithms={
            "classic": AlgorithmSupport(sweep_names=("classic",)),
            "defective_split": AlgorithmSupport(),
            "fk24": AlgorithmSupport(sweep_names=("fk24",)),
            "greedy": AlgorithmSupport(sweep_names=("greedy",)),
            "linial": AlgorithmSupport(
                sweep_names=("linial", "linial_faulty", "linial_resilient"),
            ),
        },
    ),
    "vectorized": _spec(
        "vectorized",
        "numpy CSR fast paths (repro.sim.vectorized)",
        "vectorized",
        faults=True,
        batch=True,
        serve=True,
        identical_to="reference",
        algorithms={
            "classic": AlgorithmSupport(
                batched=True, sweep_names=("classic_vectorized",)
            ),
            "defective_split": AlgorithmSupport(
                batched=True, sweep_names=("defective_split",)
            ),
            "fk24": AlgorithmSupport(
                batched=True, sweep_names=("fk24_vectorized",)
            ),
            "greedy": AlgorithmSupport(
                batched=True, sweep_names=("greedy_vectorized",)
            ),
            "linial": AlgorithmSupport(
                batched=True,
                sweep_names=("linial_vectorized", "linial_faulty_vectorized"),
            ),
        },
    ),
    "batched": _spec(
        "batched",
        "block-diagonal multi-instance execution (repro.sim.batch); an "
        "execution strategy over the vectorized/compiled kernels, not a "
        "separate sweep algorithm namespace",
        "vectorized",
        faults=True,
        batch=True,
        serve=True,
        identical_to="vectorized",
        algorithms={
            "classic": AlgorithmSupport(batched=True),
            "defective_split": AlgorithmSupport(batched=True),
            "fk24": AlgorithmSupport(batched=True),
            "greedy": AlgorithmSupport(batched=True),
            "linial": AlgorithmSupport(batched=True),
        },
    ),
    "compiled": _spec(
        "compiled",
        "numba-jitted round kernels with a bit-identical numpy fallback "
        "(repro.sim.compiled)",
        "compiled",
        faults=False,
        batch=True,
        identical_to="vectorized",
        algorithms={
            "classic": AlgorithmSupport(
                supported=False,
                note="the classic pipeline is dominated by the schedule "
                "reduction, which has no compiled kernel; run it on the "
                "vectorized backend",
            ),
            "defective_split": AlgorithmSupport(
                sweep_names=("defective_split_compiled",)
            ),
            "fk24": AlgorithmSupport(
                supported=False,
                note="the try/announce rounds are data-dependent (per-round "
                "candidate scans over ragged lists), which the static "
                "compiled kernels do not yet express; run it on the "
                "vectorized backend",
            ),
            "greedy": AlgorithmSupport(sweep_names=("greedy_compiled",)),
            "linial": AlgorithmSupport(
                batched=True, sweep_names=("linial_compiled",)
            ),
        },
        available=NUMBA_AVAILABLE,
        unavailable_reason=NUMBA_UNAVAILABLE_REASON,
    ),
    "partitioned": _spec(
        "partitioned",
        "edge-cut sharded multiprocess execution with per-round ghost-"
        "color exchange over shared memory (repro.sim.partition)",
        "partitioned",
        faults=False,
        batch=False,
        identical_to="vectorized",
        algorithms={
            "classic": AlgorithmSupport(
                supported=False,
                note="the classic pipeline's schedule reduction finalizes "
                "one color class per round — a global sequential order the "
                "shard-parallel driver does not yet express; run it on the "
                "vectorized backend",
            ),
            "defective_split": AlgorithmSupport(
                supported=False,
                note="the split's Linial core runs partitioned, but the "
                "pipeline wrapper (validation + class relabeling) is not "
                "yet sharded; run it on the vectorized backend",
            ),
            "fk24": AlgorithmSupport(
                supported=False,
                note="adoption depends on same-round cross-shard tries, so "
                "the ghost exchange would need a second sub-round per "
                "round; run it on the vectorized backend",
            ),
            "greedy": AlgorithmSupport(
                supported=False,
                note="sequential greedy is an inherently global node order; "
                "sharding it would change the algorithm",
            ),
            # no sweep names yet: the backend targets single huge
            # instances (repro-cli partition-run / bench_partition),
            # not the many-small-cells sweep grid
            "linial": AlgorithmSupport(),
        },
    ),
}


# ----------------------------------------------------------------------
# resolution
# ----------------------------------------------------------------------
def backend_names() -> tuple[str, ...]:
    """The registered backend names, display order."""
    return tuple(BACKENDS)


def get_backend(name: str) -> BackendSpec:
    """The spec of a registered backend (:class:`UnknownBackendError`
    otherwise — never a bare ``KeyError``)."""
    spec = BACKENDS.get(name)
    if spec is None:
        raise UnknownBackendError(
            f"unknown backend {name!r}; options: {', '.join(BACKENDS)}"
        )
    return spec


def require(
    name: str,
    algorithm: str | None = None,
    faults: bool = False,
    batch: bool = False,
    serve: bool = False,
) -> BackendSpec:
    """Resolve a backend and fail fast on capability mismatches.

    Raises :class:`UnknownBackendError` for unregistered names and
    :class:`CapabilityError` when the backend declares the requested
    ``algorithm`` unsupported, lacks ``supports_faults`` for a faulty
    request, lacks ``supports_batch`` for a batched one, or lacks
    ``supports_serve`` for the continuous-batching daemon.  An
    ``available=False`` backend still resolves — graceful degradation
    (the compiled backend's numpy fallback) is the contract, and the
    flag plus ``unavailable_reason`` report the degradation.
    """
    spec = get_backend(name)
    if algorithm is not None:
        entry = spec.algorithm_support(algorithm)
        if not entry.supported:
            note = f": {entry.note}" if entry.note else ""
            raise CapabilityError(
                f"backend {name!r} does not support algorithm "
                f"{algorithm!r}{note}"
            )
    if faults and not spec.supports_faults:
        raise CapabilityError(
            f"backend {name!r} does not support fault injection "
            f"(supports_faults=False); fault-capable backends: "
            f"{', '.join(b for b, s in BACKENDS.items() if s.supports_faults)}"
        )
    if batch and not spec.supports_batch:
        raise CapabilityError(
            f"backend {name!r} does not support batched execution "
            f"(supports_batch=False); batch-capable backends: "
            f"{', '.join(b for b, s in BACKENDS.items() if s.supports_batch)}"
        )
    if serve and not spec.supports_serve:
        raise CapabilityError(
            f"backend {name!r} cannot back the serving daemon "
            f"(supports_serve=False); serve-capable backends: "
            f"{', '.join(b for b, s in BACKENDS.items() if s.supports_serve)}"
        )
    return spec


def batchable_sweep_algorithms() -> tuple[str, ...]:
    """Every sweep algorithm name some backend declares batchable.

    This is the registry-derived source of
    :data:`repro.experiments.sweep.BATCHABLE_ALGORITHMS`; order follows
    registry declaration order, deduplicated.
    """
    out: list[str] = []
    for spec in BACKENDS.values():
        for algorithm in ALGORITHMS:
            entry = spec.algorithms.get(algorithm)
            if entry is None or not entry.batched:
                continue
            for sweep_name in entry.sweep_names:
                if sweep_name not in out:
                    out.append(sweep_name)
    return tuple(out)


def backend_of_sweep_algorithm(sweep_name: str) -> BackendSpec:
    """The unique backend declaring ``sweep_name`` as a sweep algorithm.

    Raises :class:`UnknownBackendError` when no backend declares it (the
    algorithm is registry-only or mistyped) — and fails loudly on a
    duplicate declaration, which would make the engine label ambiguous.
    """
    owners = [
        spec
        for spec in BACKENDS.values()
        if any(
            sweep_name in entry.sweep_names
            for entry in spec.algorithms.values()
        )
    ]
    if not owners:
        raise UnknownBackendError(
            f"no backend declares sweep algorithm {sweep_name!r}"
        )
    if len(owners) > 1:
        raise CapabilityError(
            f"sweep algorithm {sweep_name!r} is declared by multiple "
            f"backends ({', '.join(s.name for s in owners)}); the engine "
            "label would be ambiguous"
        )
    return owners[0]


def describe() -> str:
    """Human-readable registry table (``repro-cli backends``)."""
    lines = []
    for spec in BACKENDS.values():
        status = "available" if spec.available else "unavailable"
        head = f"{spec.name}: {status}"
        if not spec.available and spec.unavailable_reason:
            head += f" ({spec.unavailable_reason})"
        lines.append(head)
        lines.append(f"  {spec.description}")
        caps = [
            f"engine={spec.engine}",
            f"supports_faults={spec.supports_faults}",
            f"supports_batch={spec.supports_batch}",
            f"supports_serve={spec.supports_serve}",
            f"bit_identical_to={spec.bit_identical_to or '-'}",
        ]
        lines.append("  " + " ".join(caps))
        for algorithm in ALGORITHMS:
            entry = spec.algorithms.get(algorithm)
            if entry is None:
                lines.append(f"    {algorithm}: UNDECLARED")
                continue
            if not entry.supported:
                lines.append(f"    {algorithm}: unsupported — {entry.note}")
                continue
            detail = ", ".join(entry.sweep_names) or "(no sweep name)"
            if entry.batched:
                detail += " [batched]"
            lines.append(f"    {algorithm}: {detail}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# consistency audit
# ----------------------------------------------------------------------
def consistency_report() -> dict:
    """Cross-check the registry against every consumer name list.

    Audits the three lists the registry replaced — the fuzz pair
    registries, the fuzz batched-dispatch tables, and the sweep's
    batchable set — plus the sweep dispatch tables, the analysis
    cross-engine pairs, and the generator's pair space.  Returns
    ``{"ok": bool, "problems": [str, ...]}``; ``tests/test_registry.py``
    pins ``problems == []``, so a backend (or algorithm) added to one
    list but silently absent from another fails the suite.
    """
    from ..analysis.report import ENGINE_PAIRS as REPORT_PAIRS
    from ..experiments.sweep import (
        BATCHABLE_ALGORITHMS,
        FAST_PATHS,
        REFERENCE_PATHS,
    )
    from ..fuzz.differential import (
        _CPL_BATCH,
        _VEC_BATCH,
        ENGINE_PAIRS,
        PARTITIONED_PAIRS,
    )
    from ..fuzz.generator import GENERATABLE_PAIRS

    problems: list[str] = []

    for spec in BACKENDS.values():
        missing = [a for a in ALGORITHMS if a not in spec.algorithms]
        if missing:
            problems.append(
                f"backend {spec.name!r} declares no entry for: "
                f"{', '.join(missing)}"
            )

    vec = BACKENDS["vectorized"]
    vec_supported = {
        a for a in ALGORITHMS
        if a in vec.algorithms and vec.algorithms[a].supported
    }
    if set(ENGINE_PAIRS) != vec_supported:
        problems.append(
            f"fuzz ENGINE_PAIRS {sorted(ENGINE_PAIRS)} != vectorized-"
            f"supported algorithms {sorted(vec_supported)}"
        )
    vec_batched = {
        a for a in vec_supported if vec.algorithms[a].batched
    }
    if set(_VEC_BATCH) != vec_batched:
        problems.append(
            f"fuzz _VEC_BATCH {sorted(_VEC_BATCH)} != vectorized batched "
            f"algorithms {sorted(vec_batched)}"
        )
    if set(GENERATABLE_PAIRS) != set(ENGINE_PAIRS):
        problems.append(
            f"generator GENERATABLE_PAIRS {sorted(GENERATABLE_PAIRS)} != "
            f"fuzz ENGINE_PAIRS {sorted(ENGINE_PAIRS)}"
        )

    cpl = BACKENDS["compiled"]
    cpl_batched = {
        a for a in ALGORITHMS
        if a in cpl.algorithms
        and cpl.algorithms[a].supported
        and cpl.algorithms[a].batched
    }
    if set(_CPL_BATCH) != cpl_batched:
        problems.append(
            f"fuzz _CPL_BATCH {sorted(_CPL_BATCH)} != compiled batched "
            f"algorithms {sorted(cpl_batched)}"
        )

    par = BACKENDS["partitioned"]
    par_supported = {
        a for a in ALGORITHMS
        if a in par.algorithms and par.algorithms[a].supported
    }
    if set(PARTITIONED_PAIRS) != par_supported:
        problems.append(
            f"fuzz PARTITIONED_PAIRS {sorted(PARTITIONED_PAIRS)} != "
            f"partitioned-supported algorithms {sorted(par_supported)}"
        )

    derived = batchable_sweep_algorithms()
    if set(BATCHABLE_ALGORITHMS) != set(derived):
        problems.append(
            f"sweep BATCHABLE_ALGORITHMS {sorted(BATCHABLE_ALGORITHMS)} != "
            f"registry-derived {sorted(derived)}"
        )

    dispatchable = set(FAST_PATHS) | set(REFERENCE_PATHS)
    declared: set[str] = set()
    for spec in BACKENDS.values():
        for entry in spec.algorithms.values():
            declared.update(entry.sweep_names)
    undispatched = declared - dispatchable
    if undispatched:
        problems.append(
            f"declared sweep algorithms with no sweep dispatch entry: "
            f"{sorted(undispatched)}"
        )
    fast_undeclared = set(FAST_PATHS) - declared
    if fast_undeclared:
        problems.append(
            f"sweep FAST_PATHS entries no backend declares: "
            f"{sorted(fast_undeclared)}"
        )
    for sweep_name in sorted(declared & dispatchable):
        try:
            backend_of_sweep_algorithm(sweep_name)
        except BackendError as exc:
            problems.append(str(exc))

    for vec_name, ref_name in REPORT_PAIRS.items():
        if vec_name not in declared:
            problems.append(
                f"analysis ENGINE_PAIRS key {vec_name!r} is not a declared "
                "sweep algorithm"
            )
        if ref_name not in declared:
            problems.append(
                f"analysis ENGINE_PAIRS value {ref_name!r} is not a "
                "declared sweep algorithm"
            )

    return {"ok": not problems, "problems": problems}
