"""Per-node views and the distributed algorithm protocol.

A :class:`DistributedAlgorithm` is a *shared program* executed by every node
of the network; per-node state lives in a plain dict owned by the simulator.
Each synchronous round consists of:

1. every active node computes an outbox via :meth:`DistributedAlgorithm.send`;
2. the simulator delivers all messages simultaneously;
3. every active node consumes its inbox via
   :meth:`DistributedAlgorithm.receive`;
4. nodes whose :meth:`DistributedAlgorithm.is_done` returns true halt (they
   stop sending; their last state is frozen until everyone halts).

This matches the synchronous LOCAL/CONGEST model of the paper (Section 2):
per-round simultaneous message exchange over the edges, arbitrary internal
computation, and — even for directed inputs — communication in *both*
directions along every edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from .message import Message


@dataclass(frozen=True)
class NodeView:
    """What a node can see locally: itself, its neighborhood, shared globals.

    Attributes
    ----------
    id:
        The node's unique identifier (also its O(log n)-bit ID).
    neighbors:
        All communication neighbors (sorted).  For directed graphs this is
        the union of in- and out-neighbors — the paper allows messages in
        both directions over directed edges.
    out_neighbors / in_neighbors:
        Directional adjacency for directed inputs (both equal ``neighbors``
        on undirected graphs).
    inputs:
        Per-node problem input (color list, defect function, initial color,
        ...), set by the caller of :meth:`SyncNetwork.run`.
    globals:
        Quantities the model treats as common knowledge (n, Delta, the color
        space, parameter scale, ...).
    """

    id: int
    neighbors: tuple[int, ...]
    out_neighbors: tuple[int, ...]
    in_neighbors: tuple[int, ...]
    inputs: Mapping[str, Any]
    globals: Mapping[str, Any]

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    @property
    def outdegree(self) -> int:
        """Paper's beta_v clamp: max(1, #out-neighbors)."""
        return max(1, len(self.out_neighbors))


class DistributedAlgorithm:
    """Base class for synchronous distributed algorithms.

    Subclasses override any of the four hooks.  The default implementation
    is a node that never sends and halts immediately — convenient for
    composing phases where only some nodes are active.
    """

    name: str = "noop"

    def init_state(self, view: NodeView) -> dict[str, Any]:
        """Round-0 local initialization (no communication)."""
        return {}

    def send(self, view: NodeView, state: dict[str, Any], rnd: int) -> dict[int, Message]:
        """Outbox for round ``rnd``: neighbor id -> message."""
        return {}

    def receive(
        self,
        view: NodeView,
        state: dict[str, Any],
        rnd: int,
        inbox: dict[int, Message],
    ) -> None:
        """Consume the messages delivered in round ``rnd``."""

    def is_done(self, view: NodeView, state: dict[str, Any]) -> bool:
        """Whether this node has terminated (checked after each round)."""
        return True

    def output(self, view: NodeView, state: dict[str, Any]) -> Any:
        """The node's final output (e.g. its chosen color)."""
        return state.get("output")


@dataclass
class HaltingError(RuntimeError):
    """Raised when the round budget is exhausted before all nodes halt."""

    rounds: int
    unfinished: list[int] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - formatting only
        return (
            f"algorithm did not terminate within {self.rounds} rounds; "
            f"{len(self.unfinished)} nodes unfinished (e.g. {self.unfinished[:5]})"
        )
