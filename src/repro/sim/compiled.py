"""Compiled (numba) round kernels with a bit-identical numpy fallback.

The vectorized fast paths in :mod:`repro.sim.vectorized` spend their
time in a handful of round kernels — the Linial collision count, the
sequential greedy scan, the defective-split validation — all pure
integer loops over CSR arrays.  This module provides compiled twins of
those kernels behind the ``compiled`` backend of
:mod:`repro.sim.backends`:

* with **numba** installed, the Linial round runs as a single
  ``@njit(parallel=True)`` kernel — per-node digit extraction, Horner
  evaluation over all of F_q, neighbor-scan collision counting, and the
  argmin tie-break fused into one pass, thread-parallel across nodes
  (and, in the batched path, across the existing
  :data:`~repro.sim.batch._TILE_NODES` tiles);
* without numba, every entry point degrades to a **numpy fallback**
  built from the same :mod:`repro.sim.engine` primitives the vectorized
  paths use, so behavior is identical in both modes and CI (where numba
  is absent) still exercises the full driver, accounting, and
  equivalence battery.

**Equivalence contract**: every function here is bit-identical to its
vectorized twin — same outputs, same synthesized metrics, same
per-round :class:`~repro.obs.RunRecord` rows.  The compiled argmin uses
a strict ``<`` comparison so ties resolve to the smallest evaluation
point, exactly like numpy's first-occurrence ``argmin`` (the reference
tie-break).  The contract is enforced by ``tests/test_compiled.py`` and
the differential fuzz pairs of
:func:`repro.fuzz.differential.pairs_for_backend`.

Fault injection is **not** supported (the mask-based faulty kernel's
delivery buffers do not map onto the per-node loop); a ``faults=`` plan
raises :class:`~repro.sim.backends.CapabilityError` so callers fail
fast instead of silently running fault-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
import networkx as nx

from ..core.coloring import ColoringResult
from .engine import (
    CSRGraph,
    collision_counts,
    equal_neighbor_counts,
    poly_digits,
    poly_eval_grid,
    ragged_lists,
    record_uniform_round,
    synthesized_metrics,
)
from .message import int_bits
from .metrics import RunMetrics
from .vectorized import _phase

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> sim)
    from ..obs import RunRecorder

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit, prange

    NUMBA_AVAILABLE = True
    NUMBA_UNAVAILABLE_REASON: str | None = None
except ImportError:  # numpy fallback: same math, no compilation
    NUMBA_AVAILABLE = False
    NUMBA_UNAVAILABLE_REASON = (
        "numba is not installed; the compiled backend runs its "
        "bit-identical numpy fallback"
    )

    def njit(*args, **kwargs):  # noqa: ANN001 - decorator shim
        if args and callable(args[0]):
            return args[0]

        def wrap(fn):
            return fn

        return wrap

    prange = range


def _capability_error(what: str):
    from .backends import CapabilityError

    return CapabilityError(what)


# ----------------------------------------------------------------------
# the Linial round kernel
# ----------------------------------------------------------------------
@njit(parallel=True, cache=True)
def _linial_round_kernel(indptr, indices, colors, q, deg):  # pragma: no cover
    """One Linial step over a CSR adjacency, thread-parallel per node.

    Phase 1 evaluates every node's base-``q`` polynomial at every x in
    F_q (per-node digits + Horner, matching
    :func:`~repro.sim.engine.poly_eval_grid` value for value); phase 2
    counts, per node and evaluation point, the neighbors whose
    evaluation agrees, then takes the argmin with a strict ``<``
    comparison — first occurrence, i.e. the smallest evaluation point
    among minimal collision counts, numpy's ``argmin`` tie-break.
    """
    n = colors.shape[0]
    evals = np.empty((n, q), dtype=np.int64)
    for i in prange(n):
        digits = np.empty(deg + 1, dtype=np.int64)
        c = colors[i]
        for t in range(deg + 1):
            digits[t] = c % q
            c //= q
        for x in range(q):
            acc = np.int64(0)
            for t in range(deg, -1, -1):
                acc = (acc * x + digits[t]) % q
            evals[i, x] = acc
    out = np.empty(n, dtype=np.int64)
    for i in prange(n):
        best_x = 0
        best_hits = np.int64(np.iinfo(np.int64).max)
        for x in range(q):
            own = evals[i, x]
            hits = np.int64(0)
            for p in range(indptr[i], indptr[i + 1]):
                if evals[indices[p], x] == own:
                    hits += 1
            if hits < best_hits:  # strict: first occurrence wins ties
                best_hits = hits
                best_x = x
        out[i] = best_x * q + evals[i, best_x]
    return out


def _linial_round_numpy(csr, colors: np.ndarray, q: int, deg: int) -> np.ndarray:
    """The fallback round: the vectorized loop body, verbatim math.

    ``csr`` duck-types as the adjacency of
    :func:`~repro.sim.engine.collision_counts` (a
    :class:`~repro.sim.engine.CSRGraph` or
    :class:`~repro.sim.batch.BatchCSRGraph`).
    """
    evals = poly_eval_grid(poly_digits(colors, q, deg), q)  # (q, n)
    hits = collision_counts(csr, evals)  # (q, n) int64
    best_x = np.argmin(hits, axis=0)  # first occurrence = smallest x
    return best_x * q + evals[best_x, np.arange(colors.shape[0])]


def linial_round_compiled(csr, colors: np.ndarray, q: int, deg: int) -> np.ndarray:
    """One Linial ``(q, deg)`` step: compiled kernel or numpy fallback."""
    if NUMBA_AVAILABLE:
        return _linial_round_kernel(csr.indptr, csr.indices, colors, q, deg)
    return _linial_round_numpy(csr, colors, q, deg)


# ----------------------------------------------------------------------
# drivers (compiled twins of the vectorized fast paths)
# ----------------------------------------------------------------------
def linial_compiled(
    graph: nx.Graph,
    initial_colors: dict[int, int] | None = None,
    defect: int = 0,
    recorder: "RunRecorder | None" = None,
    faults=None,
    _finalize_recorder: bool = True,
    _csr: CSRGraph | None = None,
) -> tuple[ColoringResult, RunMetrics, int]:
    """Compiled twin of :func:`repro.sim.vectorized.linial_vectorized`.

    Identical ``(coloring, metrics, palette)`` triple and identical
    per-round recorder rows; the only difference is the round kernel
    (:func:`linial_round_compiled`).  The driver loop, schedule, and
    accounting are plain Python in both modes, so CI without numba still
    exercises everything but the jitted inner loop.  ``faults`` raises
    :class:`~repro.sim.backends.CapabilityError` — the compiled backend
    declares ``supports_faults=False``.
    """
    if faults is not None:
        raise _capability_error(
            "backend 'compiled' does not support fault injection "
            "(supports_faults=False); run faulty cells on the "
            "'vectorized' backend"
        )
    from ..algorithms.linial import defective_schedule, linial_schedule

    with _phase(recorder, "csr_build"):
        csr = _csr if _csr is not None else CSRGraph.from_networkx(graph)
    n = csr.n
    delta = int(csr.degrees.max()) if n else 0
    if initial_colors is None:
        initial_colors = {v: i for i, v in enumerate(csr.nodes)}
    m0 = max(initial_colors.values()) + 1 if initial_colors else 1
    with _phase(recorder, "schedule"):
        sched = (
            linial_schedule(m0, delta)
            if defect == 0
            else defective_schedule(m0, delta, defect)
        )
    palette = sched[-1].out_colors if sched else m0

    colors = csr.gather(initial_colors)
    metrics = synthesized_metrics(n)
    bits = int_bits(max(1, m0 - 1))
    per_round_messages = csr.num_directed_edges

    with _phase(recorder, "rounds"):
        for step in sched:
            colors = linial_round_compiled(csr, colors, step.q, step.deg)
            record_uniform_round(
                metrics, recorder, per_round_messages, bits, active=n
            )

    result = ColoringResult(csr.scatter(colors))
    if recorder is not None and _finalize_recorder:
        recorder.finalize(
            metrics,
            n=n,
            m=csr.num_directed_edges // 2,
            palette=palette,
            algorithm=recorder.algorithm or "linial_compiled",
        )
    return result, metrics, palette


@njit(cache=True)
def _greedy_kernel(
    indptr, indices, list_indptr, list_values, order, final
):  # pragma: no cover - compiled only where numba is installed
    """Sequential greedy scan: first list color no colored neighbor holds.

    Returns the dense index of the first stuck node, or -1.  Sequential
    by contract (node ``order`` is the algorithm), so no ``prange``.
    """
    for oi in range(order.shape[0]):
        i = order[oi]
        picked = np.int64(-1)
        for p in range(list_indptr[i], list_indptr[i + 1]):
            c = list_values[p]
            free = True
            for e in range(indptr[i], indptr[i + 1]):
                if final[indices[e]] == c:
                    free = False
                    break
            if free:
                picked = c
                break
        if picked < 0:
            return i
        final[i] = picked
    return np.int64(-1)


def greedy_list_compiled(
    instance,
    order: list[int] | None = None,
) -> ColoringResult:
    """Compiled twin of :func:`repro.sim.vectorized.greedy_list_vectorized`.

    Same contract — zero-defect list instances, sorted-label default
    order, first-free-color rule — with the per-node scan jitted when
    numba is available and run as the vectorized per-node numpy loop
    otherwise.  Outputs match the vectorized (and hence the reference)
    greedy node for node.
    """
    if instance.directed:
        raise ValueError("greedy_list_compiled expects an undirected instance")
    if any(d for dv in instance.defects.values() for d in dv.values()):
        raise ValueError(
            "greedy_list_compiled handles zero-defect instances only; "
            "use repro.algorithms.greedy.greedy_list_coloring for defects"
        )
    csr = CSRGraph.from_networkx(instance.graph)
    list_indptr, list_values = ragged_lists(csr, instance.lists)
    final = np.full(csr.n, -1, dtype=np.int64)
    dense_order = np.array(
        [
            csr.index[v]
            for v in (order if order is not None else sorted(csr.nodes))
        ],
        dtype=np.int64,
    )
    if NUMBA_AVAILABLE:
        stuck = int(
            _greedy_kernel(
                csr.indptr, csr.indices, list_indptr, list_values,
                dense_order, final,
            )
        )
        if stuck >= 0:
            raise ValueError(f"greedy stuck at node {csr.nodes[stuck]}")
    else:
        for i in dense_order:
            neigh_colors = final[csr.neighbors_of(i)]
            neigh_colors = neigh_colors[neigh_colors >= 0]
            lst = list_values[list_indptr[i] : list_indptr[i + 1]]
            free = lst[~np.isin(lst, neigh_colors)]
            if not free.size:
                raise ValueError(f"greedy stuck at node {csr.nodes[i]}")
            final[i] = free[0]
    return ColoringResult(csr.scatter(final))


def defective_split_compiled(
    graph: nx.Graph,
    defect: int,
    validate: bool = True,
    recorder: "RunRecorder | None" = None,
) -> tuple[dict[int, int], RunMetrics, int]:
    """Compiled twin of
    :func:`repro.sim.vectorized.defective_split_vectorized`: the Linial
    stage runs through :func:`linial_compiled`, the defect validation
    through the shared integer-bincount kernel, with the identical
    error message and finalize contract.
    """
    if defect < 0:
        raise ValueError(f"defect must be >= 0, got {defect}")
    with _phase(recorder, "csr_build"):
        csr = CSRGraph.from_networkx(graph)
    result, metrics, palette = linial_compiled(
        graph, defect=defect, recorder=recorder, _finalize_recorder=False, _csr=csr
    )
    if validate:
        with _phase(recorder, "validate"):
            colors = csr.gather(result.assignment)
            same = equal_neighbor_counts(csr, colors)
            if same.size and int(same.max()) > defect:
                bad = csr.nodes[int(np.argmax(same))]
                raise ValueError(
                    f"defective split invalid: node {bad} has {int(same.max())} "
                    f"same-class neighbors (allowed {defect})"
                )
    if recorder is not None:
        recorder.finalize(
            metrics,
            n=csr.n,
            m=csr.num_directed_edges // 2,
            palette=palette,
            algorithm=recorder.algorithm or "defective_split_compiled",
        )
    return dict(result.assignment), metrics, palette


# ----------------------------------------------------------------------
# batched execution
# ----------------------------------------------------------------------
def _compiled_rounds_batch(batch, scheds: list, colors: np.ndarray) -> np.ndarray:
    """Compiled rounds hook for
    :func:`repro.sim.batch.linial_vectorized_batch`: the same
    round-major / ``(q, deg)``-group / :data:`~repro.sim.batch._TILE_NODES`
    tiling as :func:`~repro.sim.batch._linial_rounds_batch`, with each
    tile's grid evaluation + collision count replaced by one
    thread-parallel :func:`_linial_round_kernel` launch over the tile's
    concatenated CSR.
    """
    from .batch import BatchCSRGraph, _node_tiles, _write_back

    if not batch.k:
        return colors
    max_len = max(len(s) for s in scheds)
    node_counts = [m.n for m in batch.members]
    sub_memo: dict[tuple[int, ...], BatchCSRGraph] = {}
    for r in range(max_len):
        groups: dict[tuple[int, int], list[int]] = {}
        for j, sched in enumerate(scheds):
            if r < len(sched):
                step = sched[r]
                groups.setdefault((step.q, step.deg), []).append(j)
        for (q, deg), js in sorted(groups.items()):
            for tile in _node_tiles(js, node_counts):
                if len(tile) == batch.k:
                    colors = linial_round_compiled(batch, colors, q, deg)
                    continue
                sub = sub_memo.get(tile)
                if sub is None:
                    sub = BatchCSRGraph.from_csrs(
                        [batch.members[j] for j in tile]
                    )
                    sub_memo[tile] = sub
                sub_colors = np.concatenate(
                    [colors[batch.node_slice(j)] for j in tile]
                )
                _write_back(
                    batch,
                    list(tile),
                    colors,
                    linial_round_compiled(sub, sub_colors, q, deg),
                )
    return colors


def linial_compiled_batch(
    graphs,
    initial_colors=None,
    defect=0,
    recorders=None,
    faults=None,
    return_exceptions: bool = False,
) -> list:
    """Batched twin of :func:`linial_compiled` (one
    ``(ColoringResult, RunMetrics, palette)`` triple per instance).

    Delegates to :func:`~repro.sim.batch.linial_vectorized_batch` with
    the compiled rounds hook substituted, so the packing, per-instance
    termination, accounting, and quarantine semantics are literally the
    batched vectorized path's; only the fault-free round kernel differs
    (and, without numba, not even that — the hook's fallback is the
    vectorized math).  ``faults`` plans raise
    :class:`~repro.sim.backends.CapabilityError`.
    """
    from .batch import linial_vectorized_batch

    if faults is not None and any(p is not None for p in faults):
        raise _capability_error(
            "backend 'compiled' does not support fault injection "
            "(supports_faults=False); run faulty batches on the "
            "'vectorized' backend"
        )
    return linial_vectorized_batch(
        graphs,
        initial_colors=initial_colors,
        defect=defect,
        recorders=recorders,
        return_exceptions=return_exceptions,
        _rounds=_compiled_rounds_batch,
    )
