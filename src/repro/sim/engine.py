"""CSR-based vectorized execution layer shared by all fast paths.

The reference simulator (:mod:`repro.sim.network`) charges every message
individually — perfect for bit accounting, too slow past n ~ 10^4.  The
schedule-driven algorithms the paper builds on (Linial's coloring, the
[Kuh09] defective variant, the classic color-class reduction, sequential
greedy) all share one structural property emphasized by Maus–Tonoyan and
Fuchs–Kuhn: each round's color update is a *pure function* of (own color,
neighbor colors).  That makes the whole round expressible as a handful of
array operations over a fixed adjacency structure.

This module provides that structure and the primitives every fast path in
:mod:`repro.sim.vectorized` is written against:

* :class:`CSRGraph` — the topology as compressed-sparse-row arrays
  (``indptr``/``indices``) over dense node indices ``0..n-1``, plus the
  expanded per-directed-edge ``src`` array for scatter/bincount patterns.
  Node labels are mapped through a sorted dense index so fast paths and
  the reference simulator agree on iteration order.
* ``gather`` / ``scatter`` — move per-node values between the label world
  (dicts keyed by node id) and the dense array world.
* :func:`collision_counts` / :func:`equal_neighbor_counts` — the
  "how many neighbors agree with me" kernels of Linial-style steps,
  counted with **integer** bincounts (never float accumulation).
* :func:`poly_digits` / :func:`poly_eval_grid` — the base-``q`` polynomial
  machinery of Linial steps, vectorized over all nodes and all evaluation
  points at once.
* :func:`synthesized_metrics` — a :class:`~repro.sim.metrics.RunMetrics`
  preconfigured with the same default CONGEST budget the reference driver
  uses, so synthesized accounting is comparable number-for-number.

Every fast path built on this layer carries an *equivalence contract*:
tests compare its output node for node (and its synthesized metrics
counter for counter) against the reference simulator on a shared graph
set — see ``tests/test_vectorized.py`` and ``tests/test_engine.py``.

Directed graphs are rejected explicitly: a ``nx.DiGraph`` would silently
double-direct in the CSR build (each arc would also be mirrored), so
:meth:`CSRGraph.from_networkx` raises ``ValueError`` instead.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np
import networkx as nx

from .metrics import RunMetrics, congest_bandwidth


class CSRGraph:
    """An undirected graph frozen into CSR adjacency arrays.

    Attributes
    ----------
    n:
        Node count.
    nodes:
        Node labels in sorted order; label of dense index ``i`` is
        ``nodes[i]``.
    index:
        ``label -> dense index`` mapping (inverse of ``nodes``).
    indptr, indices:
        CSR adjacency: the neighbors of dense node ``i`` are
        ``indices[indptr[i]:indptr[i+1]]``.  Every undirected edge appears
        twice (once per direction), so ``indices`` has ``2m`` entries.
    src:
        The expanded row index: ``src[k]`` is the source of directed edge
        ``k`` (i.e. ``indices[k]`` is a neighbor of ``src[k]``).  Useful
        for ``np.bincount`` scatter patterns over directed edges.
    """

    __slots__ = ("n", "nodes", "index", "indptr", "indices", "src")

    def __init__(
        self,
        n: int,
        nodes: tuple,
        index: dict[Any, int],
        indptr: np.ndarray,
        indices: np.ndarray,
    ) -> None:
        self.n = n
        self.nodes = nodes
        self.index = index
        self.indptr = indptr
        self.indices = indices
        self.src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))

    # ------------------------------------------------------------------
    @classmethod
    def from_networkx(cls, graph: nx.Graph) -> "CSRGraph":
        """Freeze a ``networkx`` graph into CSR form.

        Raises ``ValueError`` for directed graphs: mirroring each arc
        would silently treat the digraph as its underlying undirected
        graph, which is almost never what a caller meant.  Convert
        explicitly (``graph.to_undirected()``) if that *is* the intent.
        """
        if graph.is_directed():
            raise ValueError(
                "CSRGraph (and the vectorized fast paths) support undirected "
                "graphs only; got a directed graph. Convert explicitly with "
                "graph.to_undirected() if that is intended."
            )
        nodes = tuple(sorted(graph.nodes))
        n = len(nodes)
        index = {v: i for i, v in enumerate(nodes)}
        m = graph.number_of_edges()
        flat = np.fromiter(
            (index[x] for e in graph.edges for x in e),
            dtype=np.int64,
            count=2 * m,
        )
        eu, ev = flat[0::2], flat[1::2]
        src_all = np.concatenate([eu, ev])
        dst_all = np.concatenate([ev, eu])
        order = np.argsort(src_all, kind="stable")
        indices = dst_all[order]
        counts = np.bincount(src_all, minlength=n) if m else np.zeros(n, dtype=np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(n, nodes, index, indptr, indices)

    # ------------------------------------------------------------------
    @property
    def num_directed_edges(self) -> int:
        """Number of directed edge slots (``2m`` for an undirected graph)."""
        return int(self.indices.shape[0])

    @property
    def degrees(self) -> np.ndarray:
        """Per-node degree, dense order."""
        return np.diff(self.indptr)

    def neighbors_of(self, i: int) -> np.ndarray:
        """Dense neighbor indices of dense node ``i``."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    # ------------------------------------------------------------------
    def gather(
        self, mapping: Mapping[Any, int], dtype: type = np.int64
    ) -> np.ndarray:
        """Dense array of per-node values from a label-keyed mapping."""
        return np.array([mapping[v] for v in self.nodes], dtype=dtype)

    def scatter(self, values: np.ndarray) -> dict[Any, int]:
        """Label-keyed dict from a dense per-node array (values as ints)."""
        return {v: int(values[i]) for i, v in enumerate(self.nodes)}


# ----------------------------------------------------------------------
# metrics synthesis
# ----------------------------------------------------------------------
def synthesized_metrics(n: int) -> RunMetrics:
    """A fresh :class:`RunMetrics` with the reference driver's default
    CONGEST budget, so vectorized runs account like reference runs."""
    return RunMetrics(bandwidth_limit=congest_bandwidth(n))


def record_uniform_round(
    metrics: RunMetrics,
    recorder,
    count: int,
    bits: int,
    *,
    active: int | None = None,
    uncolored: int | None = None,
    faults: dict[str, int] | None = None,
    exchange: dict[str, int] | None = None,
) -> None:
    """Observe one synthesized uniform round in metrics *and* recorder.

    The single primitive every fast path charges its rounds through: it
    keeps the accounting (:meth:`RunMetrics.observe_uniform_round`) and
    the observability row (:meth:`repro.obs.RunRecorder.on_round`) in
    lockstep, so a fast path cannot desynchronize the two.  ``recorder``
    is duck-typed (anything with ``on_round``) and may be ``None``;
    ``faults`` carries the round's injected-fault counts when the fast
    path ran under a :class:`~repro.faults.FaultPlan`; ``exchange``
    carries the round's ghost-color boundary-exchange accounting when it
    ran on the partitioned backend (:mod:`repro.sim.partition`).
    """
    metrics.observe_uniform_round(count, bits)
    if recorder is not None:
        recorder.on_round(
            active=active, uncolored=uncolored, faults=faults, exchange=exchange
        )


# ----------------------------------------------------------------------
# neighbor-agreement kernels
# ----------------------------------------------------------------------
def equal_neighbor_counts(csr: CSRGraph, values: np.ndarray) -> np.ndarray:
    """Per-node count of neighbors holding an equal value (int64).

    The vectorized form of "how many neighbors share my color" — the
    validation kernel of defective colorings.
    """
    if not csr.num_directed_edges:
        return np.zeros(csr.n, dtype=np.int64)
    agree = values[csr.src] == values[csr.indices]
    return np.bincount(csr.src[agree], minlength=csr.n)


def collision_counts(csr: CSRGraph, evals: np.ndarray) -> np.ndarray:
    """Per (evaluation point, node) neighbor-agreement counts, int64.

    ``evals`` has shape ``(q, n)`` — row ``x`` holds every node's
    polynomial evaluation at point ``x``.  Returns ``hits`` of the same
    shape where ``hits[x, i]`` counts neighbors ``j`` of ``i`` with
    ``evals[x, j] == evals[x, i]``.

    Counting is pure-integer: each row is a ``np.bincount`` over the
    *indices* of agreeing directed edges, never a float-weighted sum
    (``np.bincount(..., weights=...)`` accumulates in float64, which
    loses exactness past 2^53 aggregate weight and silently casts on
    assignment into integer rows).
    """
    q = evals.shape[0]
    hits = np.zeros((q, csr.n), dtype=np.int64)
    if not csr.num_directed_edges:
        return hits
    matches = evals[:, csr.src] == evals[:, csr.indices]  # (q, 2m)
    for x in range(q):
        hits[x] = np.bincount(csr.src[matches[x]], minlength=csr.n)
    return hits


# ----------------------------------------------------------------------
# polynomial machinery (Linial steps)
# ----------------------------------------------------------------------
def poly_digits(colors: np.ndarray, q: int, degree: int) -> np.ndarray:
    """Base-q digit matrix, shape (n, degree+1) — coefficient i in col i."""
    out = np.empty((colors.shape[0], degree + 1), dtype=np.int64)
    c = colors.copy()
    for i in range(degree + 1):
        out[:, i] = c % q
        c //= q
    return out


def poly_eval_grid(digits: np.ndarray, q: int) -> np.ndarray:
    """Evaluations at every x in F_q; shape (q, n).  Horner, vectorized."""
    xs = np.arange(q, dtype=np.int64)[:, None]  # (q, 1)
    acc = np.zeros((q, digits.shape[0]), dtype=np.int64)
    for i in range(digits.shape[1] - 1, -1, -1):
        acc = (acc * xs + digits[None, :, i]) % q
    return acc


# ----------------------------------------------------------------------
# ragged per-node lists (greedy fast path)
# ----------------------------------------------------------------------
def ragged_lists(
    csr: CSRGraph, lists: Mapping[Any, Iterable[int]]
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate label-keyed per-node lists into (list_indptr, list_values).

    Dense node ``i``'s list is ``list_values[list_indptr[i]:list_indptr[i+1]]``
    in its original (preference) order.
    """
    per_node = [np.asarray(list(lists[v]), dtype=np.int64) for v in csr.nodes]
    lengths = np.array([a.shape[0] for a in per_node], dtype=np.int64)
    list_indptr = np.zeros(csr.n + 1, dtype=np.int64)
    np.cumsum(lengths, out=list_indptr[1:])
    list_values = (
        np.concatenate(per_node) if per_node else np.empty(0, dtype=np.int64)
    )
    return list_indptr, list_values
