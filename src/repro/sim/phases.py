"""Phase attribution: where do a pipeline's rounds and bits go?

Composed pipelines (Theorems 1.3/1.4) merge many sub-runs into one
:class:`~repro.sim.metrics.RunMetrics`; the merged totals answer *how
much* but not *where*.  A :class:`PhaseLog` collects one labeled entry per
sub-run so experiments and users can see the breakdown — e.g. that the
per-class OLDC constant dominates Theorem 1.3's rounds at laptop scale
(the E08 finding), or how much the Linial precoloring actually costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .metrics import RunMetrics


@dataclass(frozen=True)
class PhaseEntry:
    label: str
    rounds: int
    messages: int
    bits: int
    max_message_bits: int


@dataclass
class PhaseLog:
    """Ordered log of labeled sub-run metrics."""

    entries: list[PhaseEntry] = field(default_factory=list)

    def add(self, label: str, metrics: RunMetrics) -> None:
        self.entries.append(
            PhaseEntry(
                label=label,
                rounds=metrics.rounds,
                messages=metrics.total_messages,
                bits=metrics.total_bits,
                max_message_bits=metrics.max_message_bits,
            )
        )

    def add_raw(self, label: str, rounds: int, messages: int, bits: int) -> None:
        self.entries.append(
            PhaseEntry(
                label=label,
                rounds=rounds,
                messages=messages,
                bits=bits,
                max_message_bits=0,
            )
        )

    # ------------------------------------------------------------------
    def by_label(self) -> dict[str, PhaseEntry]:
        """Aggregate entries sharing a label (rounds/bits summed)."""
        agg: dict[str, list[PhaseEntry]] = {}
        for e in self.entries:
            agg.setdefault(e.label, []).append(e)
        return {
            label: PhaseEntry(
                label=label,
                rounds=sum(e.rounds for e in group),
                messages=sum(e.messages for e in group),
                bits=sum(e.bits for e in group),
                max_message_bits=max(e.max_message_bits for e in group),
            )
            for label, group in agg.items()
        }

    @property
    def total_rounds(self) -> int:
        return sum(e.rounds for e in self.entries)

    def dominant_phase(self) -> str | None:
        """The label carrying the most rounds (None when empty)."""
        agg = self.by_label()
        if not agg:
            return None
        return max(agg.values(), key=lambda e: (e.rounds, e.label)).label

    def render(self) -> str:
        """Fixed-width breakdown table."""
        from ..analysis.tables import format_table

        agg = sorted(self.by_label().values(), key=lambda e: -e.rounds)
        rows = [
            [e.label, e.rounds, e.messages, e.bits, e.max_message_bits]
            for e in agg
        ]
        return format_table(
            ["phase", "rounds", "messages", "bits", "max msg bits"],
            rows,
            title="round/bit breakdown by phase",
        )
