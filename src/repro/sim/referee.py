"""A referee wrapper that audits protocol invariants of any algorithm.

Wrap a :class:`~repro.sim.node.DistributedAlgorithm` in
:class:`RefereedAlgorithm` and run it normally; the referee checks, per
node and per round:

* **halting monotonicity** — once ``is_done`` returns true it must stay
  true (a node that un-halts would deadlock the run semantics);
* **silence after done** — a done node must not produce an outbox;
* **output stability** — ``output`` after completion must be pure
  (calling it twice yields equal values);
* **declared sizes** — all declared message sizes are positive.

Violations raise immediately with the node/round context, so test sweeps
over every algorithm class catch protocol bugs at their first occurrence
rather than as downstream validation noise.
"""

from __future__ import annotations

from typing import Any

from .message import Message
from .node import DistributedAlgorithm, NodeView


class RefereeViolation(AssertionError):
    """A wrapped algorithm broke a simulator protocol invariant."""


class RefereedAlgorithm(DistributedAlgorithm):
    """Delegates to ``inner`` while enforcing the invariants above."""

    def __init__(self, inner: DistributedAlgorithm) -> None:
        self.inner = inner
        self.name = f"refereed-{getattr(inner, 'name', 'algorithm')}"
        self._done_seen: dict[int, bool] = {}

    def init_state(self, view: NodeView) -> dict[str, Any]:
        self._done_seen[view.id] = False
        return self.inner.init_state(view)

    def send(self, view: NodeView, state, rnd: int):
        if self._done_seen.get(view.id):
            outbox = self.inner.send(view, state, rnd)
            if outbox:
                raise RefereeViolation(
                    f"node {view.id} sent after reporting done (round {rnd})"
                )
            return outbox
        outbox = self.inner.send(view, state, rnd)
        for dst, msg in outbox.items():
            if isinstance(msg, Message) and msg.bits is not None and msg.bits < 1:
                raise RefereeViolation(
                    f"node {view.id} declared non-positive size to {dst}"
                )
        return outbox

    def receive(self, view: NodeView, state, rnd: int, inbox) -> None:
        self.inner.receive(view, state, rnd, inbox)

    def is_done(self, view: NodeView, state) -> bool:
        done = self.inner.is_done(view, state)
        if self._done_seen.get(view.id) and not done:
            raise RefereeViolation(
                f"node {view.id} un-halted (is_done went true -> false)"
            )
        if done:
            self._done_seen[view.id] = True
        return done

    def output(self, view: NodeView, state) -> Any:
        first = self.inner.output(view, state)
        second = self.inner.output(view, state)
        if first != second:
            raise RefereeViolation(
                f"node {view.id} output is unstable: {first!r} != {second!r}"
            )
        return first
