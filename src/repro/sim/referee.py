"""A referee wrapper that audits protocol invariants of any algorithm.

Wrap a :class:`~repro.sim.node.DistributedAlgorithm` in
:class:`RefereedAlgorithm` and run it normally; the referee checks, per
node and per round:

* **halting monotonicity** — once ``is_done`` returns true it must stay
  true (a node that un-halts would deadlock the run semantics);
* **silence after done** — a done node must not produce an outbox;
* **output stability** — ``output`` after completion must be pure
  (calling it twice yields equal values);
* **message sizes** — every message (declared *or* estimated) charges a
  positive bit count, on the done branch too: a done node that emits a
  sized message must trip the size audit in addition to the
  silence-after-done check, not instead of it;
* **round sanity** — ``send`` is never called with a negative round.

Violations raise immediately with the node/round context, so test sweeps
over every algorithm class catch protocol bugs at their first occurrence
rather than as downstream validation noise.
"""

from __future__ import annotations

from typing import Any

from .message import Message
from .node import DistributedAlgorithm, NodeView


class RefereeViolation(AssertionError):
    """A wrapped algorithm broke a simulator protocol invariant."""


class RefereedAlgorithm(DistributedAlgorithm):
    """Delegates to ``inner`` while enforcing the invariants above."""

    def __init__(self, inner: DistributedAlgorithm) -> None:
        self.inner = inner
        self.name = f"refereed-{getattr(inner, 'name', 'algorithm')}"
        self._done_seen: dict[int, bool] = {}

    def init_state(self, view: NodeView) -> dict[str, Any]:
        self._done_seen[view.id] = False
        return self.inner.init_state(view)

    def send(self, view: NodeView, state, rnd: int):
        if rnd < 0:
            raise RefereeViolation(
                f"node {view.id}: send called with negative round {rnd}"
            )
        outbox = self.inner.send(view, state, rnd)
        # Size audit runs on every branch: a done node's stray message must
        # surface both its size violation and the sent-after-done violation,
        # whichever the caller catches first.
        for dst, msg in outbox.items():
            if isinstance(msg, Message) and msg.size_bits() < 1:
                raise RefereeViolation(
                    f"node {view.id} sent a non-positive-size message to {dst} "
                    f"(round {rnd})"
                )
        if self._done_seen.get(view.id) and outbox:
            raise RefereeViolation(
                f"node {view.id} sent after reporting done (round {rnd})"
            )
        return outbox

    def receive(self, view: NodeView, state, rnd: int, inbox) -> None:
        self.inner.receive(view, state, rnd, inbox)

    def is_done(self, view: NodeView, state) -> bool:
        done = self.inner.is_done(view, state)
        if self._done_seen.get(view.id) and not done:
            raise RefereeViolation(
                f"node {view.id} un-halted (is_done went true -> false)"
            )
        if done:
            self._done_seen[view.id] = True
        return done

    def output(self, view: NodeView, state) -> Any:
        first = self.inner.output(view, state)
        second = self.inner.output(view, state)
        if first != second:
            raise RefereeViolation(
                f"node {view.id} output is unstable: {first!r} != {second!r}"
            )
        return first
