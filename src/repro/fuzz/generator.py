"""Seeded random case generation: graph family × labels × configuration.

Every case is a pure function of its seed, so a fuzz run is replayable
from its command line alone (``repro-cli fuzz --seed S --iterations K``)
and a failure report can name the exact seed that produced it.

The sampled space follows what the engine pairs are *sensitive to*:

* **family** — the seeded generators of :mod:`repro.graphs.generators`,
  weighted toward the heterogeneous families (G(n,p), trees, hubs) where
  per-node degrees differ and scheduling bugs surface;
* **labels** — identity, shifted, strided, or fully shuffled
  non-contiguous relabelings.  Maus–Tonoyan's "Linial for Lists" shows
  how sensitive these schedules are to tie-breaking and encoding details,
  and label order is the tie-breaker both engines must agree on;
* **configuration** — defect budgets for the defective pairs, explicit
  (gappy, unsorted) initial colorings for Linial, random
  ``(degree+1)``-and-larger color lists for the greedy pair, shorter
  defect-scaled lists for the fk24 pair, and seeded fault plans
  (drop/corrupt/delay/duplicate/crash) for a fraction of the
  fault-capable pairs' cases (``linial``, ``fk24``), exercising the
  fault kernels of both engines against each other.

Sizes stay small (n <= ~24): the reference engine is the bottleneck, and
small instances shrink and replay fast.  Scale testing is the sweep
runner's job; *coverage* of the configuration space is the fuzzer's.
"""

from __future__ import annotations

import random

import networkx as nx

from ..graphs import generators as gen
from .case import FuzzCase

#: Engine-pair names the generator can target (kept in sync with
#: :data:`repro.fuzz.differential.ENGINE_PAIRS` by a test).
GENERATABLE_PAIRS = ("linial", "classic", "greedy", "defective_split", "fk24")

#: Label-regime names (documentation + test introspection).
LABEL_SCHEMES = ("identity", "shifted", "strided", "shuffled")

#: Graph-family names sampled by :func:`generate_case`.
FAMILY_SPACE = (
    "ring",
    "path",
    "clique",
    "star",
    "gnp",
    "gnp",  # twice: heterogeneous degrees earn extra weight
    "random_regular",
    "random_tree",
    "torus",
    "hypercube",
    "disjoint_cliques",
    "hub_and_fringe",
)


def _draw_graph(rng: random.Random) -> nx.Graph:
    """One small graph from the weighted family space."""
    family = rng.choice(FAMILY_SPACE)
    if family == "ring":
        return gen.ring(rng.randint(3, 20))
    if family == "path":
        return gen.path(rng.randint(2, 20))
    if family == "clique":
        return gen.clique(rng.randint(2, 8))
    if family == "star":
        return gen.star(rng.randint(2, 16))
    if family == "gnp":
        return gen.gnp(rng.randint(4, 24), rng.choice([0.1, 0.2, 0.35, 0.5]),
                       seed=rng.randrange(1 << 30))
    if family == "random_regular":
        n = rng.randint(6, 20)
        degree = rng.randint(2, min(5, n - 1))
        if (n * degree) % 2:
            n += 1
        return gen.random_regular(n, degree, seed=rng.randrange(1 << 30))
    if family == "random_tree":
        return gen.random_tree(rng.randint(2, 20), seed=rng.randrange(1 << 30))
    if family == "torus":
        return gen.torus(rng.randint(2, 4), rng.randint(2, 5))
    if family == "hypercube":
        return gen.hypercube(rng.randint(2, 4))
    if family == "disjoint_cliques":
        return gen.disjoint_cliques(rng.randint(2, 4), rng.randint(2, 4))
    if family == "hub_and_fringe":
        cliques = rng.randint(2, 4)
        size = rng.randint(2, 3)
        hub_degree = rng.randint(1, cliques * size)
        return gen.hub_and_fringe(hub_degree, cliques, size)
    raise AssertionError(f"unhandled family {family!r}")  # pragma: no cover


def _relabel(g: nx.Graph, rng: random.Random) -> nx.Graph:
    """Apply one of the label regimes; labels stay distinct integers."""
    scheme = rng.choice(LABEL_SCHEMES)
    old = sorted(g.nodes)
    if scheme == "identity":
        return g
    if scheme == "shifted":
        offset = rng.randint(1, 1000)
        mapping = {v: v + offset for v in old}
    elif scheme == "strided":
        stride = rng.randint(2, 7)
        offset = rng.randint(0, 50)
        mapping = {v: offset + stride * i for i, v in enumerate(old)}
    else:  # shuffled: non-contiguous AND unsorted relative to structure
        labels = rng.sample(range(10 * len(old) + 10), len(old))
        mapping = {v: labels[i] for i, v in enumerate(old)}
    return nx.relabel_nodes(g, mapping)


#: Fault modes :func:`_draw_fault` samples (matches FaultPlan's rates).
FAULT_MODES = ("drop", "corrupt", "delay", "duplicate", "crash")


def _draw_fault(rng: random.Random) -> dict[str, object]:
    """One seeded fault-plan spec with 1-3 active modes.

    Crashes always come with ``recovery_rounds`` set: a crash-stop plan
    can leave nodes permanently dead, and the differential contract
    (both engines halt identically) is already covered by dedicated
    tests — the fuzzer wants runs that terminate.
    """
    fault: dict[str, object] = {"seed": rng.randrange(1 << 30)}
    for mode in rng.sample(FAULT_MODES, rng.randint(1, 3)):
        fault[f"p_{mode}"] = rng.choice([0.05, 0.1, 0.2, 0.3, 0.5])
    if "p_delay" in fault:
        fault["max_delay"] = rng.randint(1, 3)
    if "p_crash" in fault:
        fault["crash_horizon"] = rng.randint(2, 5)
        fault["recovery_rounds"] = rng.randint(1, 2)
    return fault


def _degrees(nodes: list[int], edges: list[tuple[int, int]]) -> dict[int, int]:
    deg = {v: 0 for v in nodes}
    for u, v in edges:
        deg[u] += 1
        deg[v] += 1
    return deg


def generate_case(
    seed: int | str,
    pair: str | None = None,
    rng: random.Random | None = None,
) -> FuzzCase:
    """One concrete differential case, a pure function of ``seed``.

    ``pair`` pins the engine pair (default: drawn from
    :data:`GENERATABLE_PAIRS`).  Passing an explicit ``rng`` continues an
    existing stream (the runner derives one stream per iteration).
    """
    rng = rng if rng is not None else random.Random(seed)
    pair = pair if pair is not None else rng.choice(GENERATABLE_PAIRS)
    if pair not in GENERATABLE_PAIRS:
        raise ValueError(
            f"unknown pair {pair!r}; options: {', '.join(GENERATABLE_PAIRS)}"
        )
    g = _relabel(_draw_graph(rng), rng)
    nodes = list(g.nodes)
    rng.shuffle(nodes)  # serialized node order must not leak sortedness
    edges = [(int(u), int(v)) for u, v in g.edges]
    degrees = _degrees(nodes, edges)
    max_degree = max(degrees.values(), default=0)

    defect = 0
    initial_colors: dict[int, int] | None = None
    lists: dict[int, list[int]] | None = None
    space_size: int | None = None
    fault: dict[str, object] | None = None

    if pair == "linial":
        defect = rng.choice([0, 0, 0, 1, 2, 3])
        if rng.random() < 0.5:
            # explicit proper input coloring with gaps, unsorted values
            palette = rng.sample(range(4 * len(nodes) + 4), len(nodes))
            initial_colors = {v: palette[i] for i, v in enumerate(nodes)}
        if rng.random() < 0.4:
            fault = _draw_fault(rng)
            # A fault plan only bites when rounds actually run, and the
            # Linial schedule is empty when the initial color space sits
            # at or below its fixed point — which it does for most small
            # fuzz graphs.  Spread the initial colors far past the fixed
            # point so fault cases exercise nonempty schedules.
            span = 40 * (len(nodes) + 1)
            palette = rng.sample(range(span), len(nodes))
            initial_colors = {v: palette[i] for i, v in enumerate(nodes)}
    elif pair == "defective_split":
        defect = rng.randint(0, 3)
    elif pair == "greedy":
        space_size = max_degree + 1 + rng.randint(0, 4)
        lists = {}
        for v in nodes:
            size = min(space_size, degrees[v] + 1 + rng.randint(0, 2))
            lists[v] = sorted(rng.sample(range(space_size), size))
    elif pair == "fk24":
        # the defect budget shrinks the lists: floor(deg/(d+1)) + 1
        # colors suffice, plus a little slack so tie-breaking at the
        # viability boundary gets exercised from both sides
        defect = rng.choice([0, 0, 1, 1, 2, 3])
        space_size = max_degree + 1 + rng.randint(0, 4)
        lists = {}
        for v in nodes:
            need = degrees[v] // (defect + 1) + 1
            size = min(space_size, need + rng.randint(0, 2))
            lists[v] = sorted(rng.sample(range(space_size), size))
        if rng.random() < 0.4:
            fault = _draw_fault(rng)
    # pair == "classic": the graph is the whole configuration

    case = FuzzCase(
        pair=pair,
        nodes=[int(v) for v in nodes],
        edges=edges,
        defect=defect,
        initial_colors=initial_colors,
        lists=lists,
        space_size=space_size,
        fault=fault,
        seed=seed,
    )
    case.check_valid()
    return case
