"""Differential execution: reference vs vectorized, plus semantic oracles.

Each :class:`EnginePair` names the two implementations of one algorithm
and how to judge a trial.  :func:`run_case` executes both sides on the
same materialized graph and collects *every* failed check (not just the
first): a divergence report that says "outputs differ AND round 3's bit
totals differ" localizes a bug far better than either alone.

Checked per trial:

1. **no crashes** — either engine raising (including a
   :class:`~repro.sim.referee.RefereeViolation` from the refereed
   reference run) is a failure, with the exception recorded;
2. **output equality** — node-for-node identical assignments;
3. **metrics equality** — identical :meth:`~repro.sim.metrics.RunMetrics.summary`
   counters (rounds, messages, bits, bandwidth budget/violations);
4. **round accounting** — :func:`~repro.obs.compare_round_accounting`
   over the two :class:`~repro.obs.RunRecord`s must report equal rounds,
   equal per-round accounting, equal totals, and equal per-round fault
   counts;
5. **semantic oracles** — the output must actually *be* what the
   algorithm promises, judged by the independent validators of
   :mod:`repro.core.validate`: properness / defect budgets / list
   membership per pair, plus CONGEST bandwidth compliance (zero
   violations against the default budget at fuzz sizes).

The oracles matter because output equality alone would bless two engines
that share a bug; an independent validator cannot.

Cases carrying a fault plan (``case.fault``) run both engines of the
fault-capable pairs (``linial``, ``fk24``) under the identical seeded
adversary.  There the semantic oracle is skipped — a dropped or
corrupted color message can legitimately break properness — and the
trial's contract tightens to pure engine equality, including the
injected fault schedule itself (checks 2-4).  The ``fk24`` pair adds one
wrinkle: corruption can poison its taker knowledge into a legitimate
livelock, so a :class:`~repro.sim.node.HaltingError` on *both* sides
with the same shape is agreement (encoded via ``EngineRun.extra``),
while a halt on one side only is a divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..algorithms.defective import defective_class_partition
from ..algorithms.greedy import greedy_list_coloring
from ..algorithms.linial import run_linial
from ..algorithms.reduction import classic_delta_plus_one
from ..core.instance import delta_plus_one_instance
from ..core.validate import (
    validate_defective_coloring,
    validate_ldc,
    validate_proper_coloring,
)
from ..obs import (
    ENGINE_COMPILED,
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    RunRecord,
    RunRecorder,
    compare_round_accounting,
)
from ..sim.compiled import (
    defective_split_compiled,
    greedy_list_compiled,
    linial_compiled,
)
from ..sim.metrics import RunMetrics
from ..sim.referee import RefereedAlgorithm
from ..sim.vectorized import (
    classic_delta_plus_one_vectorized,
    defective_split_vectorized,
    greedy_list_vectorized,
    linial_vectorized,
)
from .case import FuzzCase


@dataclass
class EngineRun:
    """One engine's view of a trial: assignment + optional accounting.

    ``extra`` carries pair-specific payload the judge must also see
    equal across engines — the ``fk24`` pair stores each node's
    adoption round (the priority its orientation derives from) there,
    or a ``halted`` marker when the run ended in a
    :class:`~repro.sim.node.HaltingError` (an adversary can legitimately
    livelock fk24; *identical* halts on both sides are agreement, a halt
    on one side only is a divergence).
    """

    assignment: dict[int, int]
    metrics: RunMetrics | None = None
    record: RunRecord | None = None
    palette: int | None = None
    extra: dict[str, Any] | None = None


@dataclass(frozen=True)
class EnginePair:
    """Two implementations of one algorithm plus the trial's oracles.

    ``run_reference`` / ``run_vectorized`` take a materialized case and
    return an :class:`EngineRun`; ``oracle`` validates the (agreed)
    output semantically and returns a list of violation strings.
    """

    name: str
    run_reference: Callable[[FuzzCase], EngineRun]
    run_vectorized: Callable[[FuzzCase], EngineRun]
    oracle: Callable[[FuzzCase, EngineRun], list[str]]


@dataclass
class CaseOutcome:
    """Everything :func:`run_case` learned about one trial."""

    case: FuzzCase
    ok: bool
    failures: list[str] = field(default_factory=list)
    reference: EngineRun | None = None
    vectorized: EngineRun | None = None
    accounting: dict[str, Any] | None = None

    def describe(self) -> str:
        head = "OK" if self.ok else "FAIL"
        out = f"{head} {self.case.describe()}"
        for f in self.failures:
            out += f"\n  - {f}"
        return out


# ----------------------------------------------------------------------
# pair definitions
# ----------------------------------------------------------------------
def _case_plan(case: FuzzCase):
    from ..faults import FaultPlan

    return None if case.fault is None else FaultPlan.from_dict(case.fault)


def _ref_linial(case: FuzzCase) -> EngineRun:
    recorder = RunRecorder(engine=ENGINE_REFERENCE)
    result, metrics, palette = run_linial(
        case.graph(),
        initial_colors=case.initial_colors,
        defect=case.defect,
        recorder=recorder,
        wrap=RefereedAlgorithm,
        faults=_case_plan(case),
    )
    return EngineRun(dict(result.assignment), metrics, recorder.record, palette)


def _vec_linial(case: FuzzCase) -> EngineRun:
    recorder = RunRecorder(engine=ENGINE_VECTORIZED)
    result, metrics, palette = linial_vectorized(
        case.graph(),
        initial_colors=case.initial_colors,
        defect=case.defect,
        recorder=recorder,
        faults=_case_plan(case),
    )
    return EngineRun(dict(result.assignment), metrics, recorder.record, palette)


def _oracle_linial(case: FuzzCase, run: EngineRun) -> list[str]:
    from ..core.coloring import ColoringResult

    if case.fault is not None:
        # Under an injected adversary the output has no validity
        # promise (drops/corruptions legitimately break properness);
        # the contract is engine equality, checked by run_case itself.
        return []

    result = ColoringResult(run.assignment)
    g = case.graph()
    if case.defect == 0:
        report = validate_proper_coloring(g, result)
    else:
        report = validate_defective_coloring(g, result, case.defect)
    problems = list(report.violations)
    if run.palette is not None:
        over = [v for v, c in run.assignment.items() if c >= run.palette or c < 0]
        if over:
            problems.append(
                f"colors outside palette {run.palette} at nodes {sorted(over)[:5]}"
            )
    return problems


def _ref_classic(case: FuzzCase) -> EngineRun:
    recorder = RunRecorder(engine=ENGINE_REFERENCE)
    result, metrics = classic_delta_plus_one(
        case.graph(), recorder=recorder, wrap=RefereedAlgorithm
    )
    return EngineRun(dict(result.assignment), metrics, recorder.record)


def _vec_classic(case: FuzzCase) -> EngineRun:
    recorder = RunRecorder(engine=ENGINE_VECTORIZED)
    result, metrics = classic_delta_plus_one_vectorized(
        case.graph(), recorder=recorder
    )
    return EngineRun(dict(result.assignment), metrics, recorder.record)


def _oracle_classic(case: FuzzCase, run: EngineRun) -> list[str]:
    from ..core.coloring import ColoringResult

    g = case.graph()
    instance = delta_plus_one_instance(g)
    # validate_ldc covers list membership (colors within the Delta+1
    # space) and, with all defects zero, properness.
    return list(validate_ldc(instance, ColoringResult(run.assignment)).violations)


def _ref_greedy(case: FuzzCase) -> EngineRun:
    result = greedy_list_coloring(case.instance())
    return EngineRun(dict(result.assignment))


def _vec_greedy(case: FuzzCase) -> EngineRun:
    result = greedy_list_vectorized(case.instance())
    return EngineRun(dict(result.assignment))


def _oracle_greedy(case: FuzzCase, run: EngineRun) -> list[str]:
    from ..core.coloring import ColoringResult

    # list membership + the zero defect budget of every list color
    return list(validate_ldc(case.instance(), ColoringResult(run.assignment)).violations)


def _ref_defective_split(case: FuzzCase) -> EngineRun:
    recorder = RunRecorder(engine=ENGINE_REFERENCE)
    classes, metrics, palette = defective_class_partition(
        case.graph(), case.defect, recorder=recorder, wrap=RefereedAlgorithm
    )
    return EngineRun(dict(classes), metrics, recorder.record, palette)


def _vec_defective_split(case: FuzzCase) -> EngineRun:
    recorder = RunRecorder(engine=ENGINE_VECTORIZED)
    classes, metrics, palette = defective_split_vectorized(
        case.graph(), case.defect, recorder=recorder
    )
    return EngineRun(dict(classes), metrics, recorder.record, palette)


def _oracle_defective_split(case: FuzzCase, run: EngineRun) -> list[str]:
    from ..core.coloring import ColoringResult

    report = validate_defective_coloring(
        case.graph(), ColoringResult(run.assignment), case.defect
    )
    return list(report.violations)


def _halted_fk24(exc, recorder: RunRecorder) -> EngineRun:
    """Encode a legitimate fk24 livelock as a comparable run.

    Corruption can poison a node's taker knowledge so no list color ever
    looks viable again; both engines then idle to the same round budget.
    The halt's shape (round count + unfinished set) and the full
    per-round record stay under differential comparison via ``extra``.
    """
    return EngineRun(
        {},
        None,
        recorder.record,
        None,
        extra={
            "halted": {
                "rounds": int(exc.rounds),
                "unfinished": tuple(sorted(exc.unfinished)),
            }
        },
    )


def _ref_fk24(case: FuzzCase) -> EngineRun:
    from ..algorithms.fk24 import run_fk24
    from ..sim.node import HaltingError

    recorder = RunRecorder(engine=ENGINE_REFERENCE)
    adoption: dict[int, int] = {}
    try:
        result, metrics, palette = run_fk24(
            case.graph(),
            lists=case.lists,
            space_size=case.space_size,
            defect=case.defect,
            recorder=recorder,
            wrap=RefereedAlgorithm,
            faults=_case_plan(case),
            adoption_out=adoption,
        )
    except HaltingError as exc:
        return _halted_fk24(exc, recorder)
    return EngineRun(
        dict(result.assignment),
        metrics,
        recorder.record,
        palette,
        extra={"adoption": adoption},
    )


def _vec_fk24(case: FuzzCase) -> EngineRun:
    from ..sim.node import HaltingError
    from ..sim.vectorized import fk24_vectorized

    recorder = RunRecorder(engine=ENGINE_VECTORIZED)
    adoption: dict[int, int] = {}
    try:
        result, metrics, palette = fk24_vectorized(
            case.graph(),
            lists=case.lists,
            space_size=case.space_size,
            defect=case.defect,
            recorder=recorder,
            faults=_case_plan(case),
            adoption_out=adoption,
        )
    except HaltingError as exc:
        return _halted_fk24(exc, recorder)
    return EngineRun(
        dict(result.assignment),
        metrics,
        recorder.record,
        palette,
        extra={"adoption": adoption},
    )


def _oracle_fk24(case: FuzzCase, run: EngineRun) -> list[str]:
    from ..core.coloring import ColoringResult, orientation_from_priority
    from ..core.validate import validate_arbdefective

    if case.fault is not None:
        # engine equality only — the adversary voids validity promises
        return []
    if run.extra is not None and "halted" in run.extra:
        return [
            "fk24 halted without faults: "
            f"{run.extra['halted']['rounds']} round(s), unfinished "
            f"{list(run.extra['halted']['unfinished'])[:5]}"
        ]
    adoption = (run.extra or {}).get("adoption")
    if adoption is None:
        return ["fk24 run carries no adoption rounds to orient by"]
    g = case.graph()
    result = ColoringResult(
        dict(run.assignment), orientation_from_priority(g, adoption)
    )
    report = validate_arbdefective(case.fk24_instance(), result)
    problems = list(report.violations)
    if run.palette is not None:
        over = [v for v, c in run.assignment.items() if c >= run.palette or c < 0]
        if over:
            problems.append(
                f"colors outside palette {run.palette} at nodes {sorted(over)[:5]}"
            )
    return problems


#: The engine pairs under differential test — every vectorized fast path
#: in :mod:`repro.sim.vectorized` paired with its reference twin.
ENGINE_PAIRS: dict[str, EnginePair] = {
    "linial": EnginePair("linial", _ref_linial, _vec_linial, _oracle_linial),
    "classic": EnginePair("classic", _ref_classic, _vec_classic, _oracle_classic),
    "greedy": EnginePair("greedy", _ref_greedy, _vec_greedy, _oracle_greedy),
    "defective_split": EnginePair(
        "defective_split",
        _ref_defective_split,
        _vec_defective_split,
        _oracle_defective_split,
    ),
    "fk24": EnginePair("fk24", _ref_fk24, _vec_fk24, _oracle_fk24),
}


# ----------------------------------------------------------------------
# compiled-backend pairs
# ----------------------------------------------------------------------
def _cpl_linial(case: FuzzCase) -> EngineRun:
    recorder = RunRecorder(engine=ENGINE_COMPILED)
    result, metrics, palette = linial_compiled(
        case.graph(),
        initial_colors=case.initial_colors,
        defect=case.defect,
        recorder=recorder,
        faults=_case_plan(case),
    )
    return EngineRun(dict(result.assignment), metrics, recorder.record, palette)


def _cpl_greedy(case: FuzzCase) -> EngineRun:
    result = greedy_list_compiled(case.instance())
    return EngineRun(dict(result.assignment))


def _cpl_defective_split(case: FuzzCase) -> EngineRun:
    recorder = RunRecorder(engine=ENGINE_COMPILED)
    classes, metrics, palette = defective_split_compiled(
        case.graph(), case.defect, recorder=recorder
    )
    return EngineRun(dict(classes), metrics, recorder.record, palette)


#: Reference-vs-**compiled** pairs: the same reference sides and oracles
#: as :data:`ENGINE_PAIRS` with the compiled backend on the fast side.
#: No ``classic`` entry — the compiled backend declares that algorithm
#: unsupported (see :data:`repro.sim.backends.BACKENDS`) — and fault
#: cases must be filtered by the caller (``supports_faults=False``).
COMPILED_PAIRS: dict[str, EnginePair] = {
    "linial": EnginePair("linial", _ref_linial, _cpl_linial, _oracle_linial),
    "greedy": EnginePair("greedy", _ref_greedy, _cpl_greedy, _oracle_greedy),
    "defective_split": EnginePair(
        "defective_split",
        _ref_defective_split,
        _cpl_defective_split,
        _oracle_defective_split,
    ),
}


def _par_linial(case: FuzzCase) -> EngineRun:
    from ..obs import ENGINE_PARTITIONED
    from ..sim.partition import run_partitioned_linial

    recorder = RunRecorder(engine=ENGINE_PARTITIONED)
    # two shards, fork context: the cheapest configuration that still
    # exercises a real boundary exchange per case (differential replay
    # spawns many short runs; fork skips the per-case interpreter boot,
    # while the RSS-honest spawn default stays for benchmarks)
    result, metrics, palette = run_partitioned_linial(
        case.graph(),
        initial_colors=case.initial_colors,
        defect=case.defect,
        recorder=recorder,
        shards=2,
        mp_context="fork",
    )
    return EngineRun(dict(result.assignment), metrics, recorder.record, palette)


#: Reference-vs-**partitioned** pairs: the same reference side and
#: oracle as :data:`ENGINE_PAIRS`' ``linial`` entry with the shard-
#: parallel driver on the fast side.  Linial only — the backend declares
#: the other algorithms unsupported (see
#: :data:`repro.sim.backends.BACKENDS`) — and fault cases must be
#: filtered by the caller (``supports_faults=False``).
PARTITIONED_PAIRS: dict[str, EnginePair] = {
    "linial": EnginePair("linial", _ref_linial, _par_linial, _oracle_linial),
}


def pairs_for_backend(backend: str = "vectorized") -> dict[str, EnginePair]:
    """The engine-pair registry whose fast side runs on ``backend``.

    Resolves through :mod:`repro.sim.backends`, so unknown names raise
    :class:`~repro.sim.backends.UnknownBackendError` and the reference
    backend — the baseline side of every pair, with nothing to compare
    itself against — raises
    :class:`~repro.sim.backends.CapabilityError`.  The ``batched``
    backend shares the vectorized registry (batching is the execution
    strategy selected by ``batch_size``/:func:`run_cases_batched`, not a
    different fast side).
    """
    from ..sim.backends import CapabilityError, get_backend

    spec = get_backend(backend)
    if spec.name in ("vectorized", "batched"):
        return ENGINE_PAIRS
    if spec.name == "compiled":
        return COMPILED_PAIRS
    if spec.name == "partitioned":
        return PARTITIONED_PAIRS
    raise CapabilityError(
        f"backend {backend!r} has no differential pairs: it is the "
        "baseline every pair compares against"
    )


def pair_names() -> tuple[str, ...]:
    """The registered engine-pair names, stable order."""
    return tuple(ENGINE_PAIRS)


# ----------------------------------------------------------------------
# the differential check
# ----------------------------------------------------------------------
def _run_side(
    label: str, fn: Callable[[FuzzCase], EngineRun], case: FuzzCase
) -> tuple[EngineRun | None, str | None]:
    try:
        return fn(case), None
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return None, f"{label} engine raised {type(exc).__name__}: {exc}"


def _judge_case(
    case: FuzzCase,
    pair: EnginePair,
    ref: EngineRun | None,
    vec: EngineRun | None,
    failures: list[str],
) -> dict[str, Any] | None:
    """The trial's verdict: checks 2-5, appended to ``failures``.

    Shared between :func:`run_case` and :func:`run_cases_batched` so the
    batched path judges with literally the same code (same messages, same
    ordering) as the per-case path.  Returns the round-accounting
    comparison when both records exist.
    """
    accounting: dict[str, Any] | None = None
    if ref is not None and vec is not None:
        if ref.assignment != vec.assignment:
            diff = [
                v
                for v in case.nodes
                if ref.assignment.get(v) != vec.assignment.get(v)
            ]
            failures.append(
                f"outputs differ at {len(diff)} node(s), first "
                f"{sorted(diff)[:5]}: reference "
                f"{[ref.assignment.get(v) for v in sorted(diff)[:5]]} vs "
                f"vectorized {[vec.assignment.get(v) for v in sorted(diff)[:5]]}"
            )
        if ref.palette is not None and vec.palette is not None:
            if ref.palette != vec.palette:
                failures.append(
                    f"palettes differ: {ref.palette} vs {vec.palette}"
                )
        if ref.metrics is not None and vec.metrics is not None:
            sa, sb = ref.metrics.summary(), vec.metrics.summary()
            if sa != sb:
                keys = [k for k in sa if sa[k] != sb.get(k)]
                failures.append(f"metrics summaries differ on {keys}: {sa} vs {sb}")
        if ref.extra is not None or vec.extra is not None:
            if ref.extra != vec.extra:
                failures.append(
                    f"engine extras differ: reference {ref.extra} vs "
                    f"vectorized {vec.extra}"
                )
        if ref.record is not None and vec.record is not None:
            accounting = compare_round_accounting(ref.record, vec.record)
            if not (
                accounting["rounds_equal"]
                and accounting["accounting_equal"]
                and accounting["totals_equal"]
                and accounting["faults_equal"]
            ):
                failures.append(
                    "round accounting diverges: first mismatch at round "
                    f"{accounting['first_mismatch']} "
                    f"({accounting['mismatched_rounds']} mismatched round(s))"
                )
    # semantic oracles judge the vectorized output (the reference output,
    # when present and equal, is covered transitively; when outputs
    # differ both already failed above)
    judged = vec if vec is not None else ref
    if judged is not None:
        for problem in pair.oracle(case, judged):
            failures.append(f"oracle: {problem}")
        if judged.metrics is not None:
            if judged.metrics.bandwidth_violations:
                failures.append(
                    f"oracle: {judged.metrics.bandwidth_violations} bandwidth "
                    f"violation(s) against budget {judged.metrics.bandwidth_limit}"
                )
    return accounting


def run_case(
    case: FuzzCase,
    pairs: dict[str, EnginePair] | None = None,
) -> CaseOutcome:
    """Execute one differential trial; collect every failed check.

    ``pairs`` overrides the registry — the mutation tests inject
    deliberately-broken pairs this way to prove the harness catches,
    shrinks, and serializes real divergences.
    """
    registry = pairs if pairs is not None else ENGINE_PAIRS
    if case.pair not in registry:
        raise KeyError(
            f"unknown engine pair {case.pair!r}; options: {', '.join(registry)}"
        )
    case.check_valid()
    pair = registry[case.pair]
    failures: list[str] = []

    ref, err = _run_side("reference", pair.run_reference, case)
    if err:
        failures.append(err)
    vec, err = _run_side("vectorized", pair.run_vectorized, case)
    if err:
        failures.append(err)
    accounting = _judge_case(case, pair, ref, vec, failures)
    return CaseOutcome(
        case=case,
        ok=not failures,
        failures=failures,
        reference=ref,
        vectorized=vec,
        accounting=accounting,
    )


# ----------------------------------------------------------------------
# the batched differential check
# ----------------------------------------------------------------------
def _vec_linial_batch(cases: list[FuzzCase]) -> list:
    from ..obs import RunRecorder as _RR
    from ..sim.batch import linial_vectorized_batch

    recs = [_RR(engine=ENGINE_VECTORIZED) for _ in cases]
    outs = linial_vectorized_batch(
        [c.graph() for c in cases],
        initial_colors=[c.initial_colors for c in cases],
        defect=[c.defect for c in cases],
        recorders=recs,
        faults=[_case_plan(c) for c in cases],
        return_exceptions=True,
    )
    return [
        out
        if isinstance(out, BaseException)
        else EngineRun(dict(out[0].assignment), out[1], rec.record, out[2])
        for out, rec in zip(outs, recs)
    ]


def _vec_classic_batch(cases: list[FuzzCase]) -> list:
    from ..obs import RunRecorder as _RR
    from ..sim.batch import classic_delta_plus_one_vectorized_batch

    recs = [_RR(engine=ENGINE_VECTORIZED) for _ in cases]
    outs = classic_delta_plus_one_vectorized_batch(
        [c.graph() for c in cases], recorders=recs, return_exceptions=True
    )
    return [
        out
        if isinstance(out, BaseException)
        else EngineRun(dict(out[0].assignment), out[1], rec.record)
        for out, rec in zip(outs, recs)
    ]


def _vec_greedy_batch(cases: list[FuzzCase]) -> list:
    from ..sim.batch import greedy_list_vectorized_batch

    outs = greedy_list_vectorized_batch(
        [c.instance() for c in cases], return_exceptions=True
    )
    return [
        out
        if isinstance(out, BaseException)
        else EngineRun(dict(out.assignment))
        for out in outs
    ]


def _vec_defective_split_batch(cases: list[FuzzCase]) -> list:
    from ..obs import RunRecorder as _RR
    from ..sim.batch import defective_split_vectorized_batch

    recs = [_RR(engine=ENGINE_VECTORIZED) for _ in cases]
    outs = defective_split_vectorized_batch(
        [c.graph() for c in cases],
        defect=[c.defect for c in cases],
        recorders=recs,
        return_exceptions=True,
    )
    return [
        out
        if isinstance(out, BaseException)
        else EngineRun(dict(out[0]), out[1], rec.record, out[2])
        for out, rec in zip(outs, recs)
    ]


def _vec_fk24_batch(cases: list[FuzzCase]) -> list:
    from ..obs import RunRecorder as _RR
    from ..sim.batch import fk24_vectorized_batch
    from ..sim.node import HaltingError

    recs = [_RR(engine=ENGINE_VECTORIZED) for _ in cases]
    outs_adoption: list[dict[int, int]] = [{} for _ in cases]
    outs = fk24_vectorized_batch(
        [c.graph() for c in cases],
        lists=[c.lists for c in cases],
        space_size=[c.space_size for c in cases],
        defect=[c.defect for c in cases],
        recorders=recs,
        faults=[_case_plan(c) for c in cases],
        return_exceptions=True,
        adoption_outs=outs_adoption,
    )
    sides = []
    for out, rec, adoption in zip(outs, recs, outs_adoption):
        if isinstance(out, HaltingError):
            # identical-halt agreement, as in the per-case runners
            sides.append(_halted_fk24(out, rec))
        elif isinstance(out, BaseException):
            sides.append(out)
        else:
            sides.append(
                EngineRun(
                    dict(out[0].assignment),
                    out[1],
                    rec.record,
                    out[2],
                    extra={"adoption": adoption},
                )
            )
    return sides


#: Batched vectorized twins of the default pairs' ``run_vectorized``
#: sides; a registry entry must *equal* the default pair for its batched
#: side to apply (mutated pairs always run per-case).
_VEC_BATCH: dict[str, Callable[[list[FuzzCase]], list]] = {
    "linial": _vec_linial_batch,
    "classic": _vec_classic_batch,
    "greedy": _vec_greedy_batch,
    "defective_split": _vec_defective_split_batch,
    "fk24": _vec_fk24_batch,
}


def _cpl_linial_batch(cases: list[FuzzCase]) -> list:
    from ..obs import RunRecorder as _RR
    from ..sim.compiled import linial_compiled_batch

    recs = [_RR(engine=ENGINE_COMPILED) for _ in cases]
    outs = linial_compiled_batch(
        [c.graph() for c in cases],
        initial_colors=[c.initial_colors for c in cases],
        defect=[c.defect for c in cases],
        recorders=recs,
        faults=[_case_plan(c) for c in cases],
        return_exceptions=True,
    )
    return [
        out
        if isinstance(out, BaseException)
        else EngineRun(dict(out[0].assignment), out[1], rec.record, out[2])
        for out, rec in zip(outs, recs)
    ]


#: Batched compiled twin of :data:`COMPILED_PAIRS`' fast sides (the
#: compiled backend declares only ``linial`` batched).
_CPL_BATCH: dict[str, Callable[[list[FuzzCase]], list]] = {
    "linial": _cpl_linial_batch,
}


def _batched_runner(
    name: str, pair: EnginePair
) -> Callable[[list[FuzzCase]], list] | None:
    """The batched fast side for ``pair``, or ``None`` to run per-case.

    Dispatch is by *value* equality against the stock registries:
    ``dataclasses.replace`` copies of a stock pair (e.g. a caller-built
    ``pairs=`` dict) keep their batched path, while genuinely mutated
    pairs — different callables or oracles — fall back to per-case
    execution, where their overridden ``run_vectorized`` actually runs.
    """
    if pair == ENGINE_PAIRS.get(name):
        return _VEC_BATCH.get(name)
    if pair == COMPILED_PAIRS.get(name):
        return _CPL_BATCH.get(name)
    return None


def run_cases_batched(
    cases: list[FuzzCase],
    pairs: dict[str, EnginePair] | None = None,
) -> list[CaseOutcome]:
    """Differential trials with the vectorized side batched per pair.

    All cases of one stock pair run as a single block-diagonal
    :mod:`repro.sim.batch` execution; the reference side, the judge, and
    the oracles are per-case, so each :class:`CaseOutcome` — messages,
    ordering, accounting — is identical to :func:`run_case`'s.  Batching
    is resolved by :func:`_batched_runner` *value* equality, so a
    ``pairs=`` registry holding copies of stock pairs keeps the batched
    path; genuinely mutated pairs and singleton groups fall back to
    :func:`run_case`.
    """
    registry = pairs if pairs is not None else ENGINE_PAIRS
    outcomes: list[CaseOutcome | None] = [None] * len(cases)
    by_pair: dict[str, list[int]] = {}
    for i, case in enumerate(cases):
        if case.pair not in registry:
            raise KeyError(
                f"unknown engine pair {case.pair!r}; options: "
                f"{', '.join(registry)}"
            )
        case.check_valid()
        by_pair.setdefault(case.pair, []).append(i)
    for name, idxs in by_pair.items():
        pair = registry[name]
        batch_fn = _batched_runner(name, pair)
        if batch_fn is None or len(idxs) < 2:
            for i in idxs:
                outcomes[i] = run_case(cases[i], pairs=registry)
            continue
        vec_sides = batch_fn([cases[i] for i in idxs])
        for i, side in zip(idxs, vec_sides):
            case = cases[i]
            failures: list[str] = []
            ref, err = _run_side("reference", pair.run_reference, case)
            if err:
                failures.append(err)
            if isinstance(side, BaseException):
                vec = None
                failures.append(
                    f"vectorized engine raised {type(side).__name__}: {side}"
                )
            else:
                vec = side
            accounting = _judge_case(case, pair, ref, vec, failures)
            outcomes[i] = CaseOutcome(
                case=case,
                ok=not failures,
                failures=failures,
                reference=ref,
                vectorized=vec,
                accounting=accounting,
            )
    return outcomes  # type: ignore[return-value]
