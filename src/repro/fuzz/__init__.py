"""Differential fuzzing: the engine-equivalence contract, enforced.

PR 1 and PR 2 established a standing contract — every vectorized fast
path must be node-for-node and round-for-round equivalent to the
reference :class:`~repro.sim.network.SyncNetwork` run — but hand-picked
test graphs only sample that contract.  The paper's reductions
(Theorems 1.2–1.4) chain many stages, so a silent divergence in one
stage corrupts every downstream measurement.  This package turns the
contract into a machine:

* :mod:`repro.fuzz.case` — :class:`FuzzCase`, the concrete, serializable
  description of one differential trial (graph, label regime, lists,
  defects, initial colors);
* :mod:`repro.fuzz.generator` — the seeded random instance generator
  over the graph families of :mod:`repro.graphs.generators` and the
  instance builders of :mod:`repro.core.instance`, including the
  non-contiguous / unsorted node-label regimes hand-written tests never
  cover;
* :mod:`repro.fuzz.differential` — the engine-pair registry and
  :func:`run_case`, which executes a case on the reference engine
  (wrapped in :class:`~repro.sim.referee.RefereedAlgorithm`) and the
  matching vectorized fast path, then checks output equality,
  :func:`~repro.obs.compare_round_accounting` equivalence, and the
  semantic oracles of :mod:`repro.core.validate`;
* :mod:`repro.fuzz.shrink` — a greedy shrinker that minimizes failing
  cases by deleting nodes/edges and shrinking lists while the failure
  reproduces;
* :mod:`repro.fuzz.corpus` — the JSON failure corpus under
  ``tests/corpus/``, replayed as regression tests;
* :mod:`repro.fuzz.runner` — :func:`fuzz_run`, the
  generate → run → shrink → serialize loop behind ``repro-cli fuzz``.

See ``docs/FUZZING.md`` for the workflow.
"""

from .case import CORPUS_SCHEMA_VERSION, FuzzCase
from .corpus import (
    case_filename,
    corrupt_corpus_files,
    load_case,
    load_corpus,
    replay_corpus,
    save_case,
)
from .differential import (
    COMPILED_PAIRS,
    ENGINE_PAIRS,
    PARTITIONED_PAIRS,
    CaseOutcome,
    EnginePair,
    pair_names,
    pairs_for_backend,
    run_case,
    run_cases_batched,
)
from .generator import FAMILY_SPACE, LABEL_SCHEMES, generate_case
from .runner import FuzzFailure, FuzzReport, fuzz_run
from .shrink import shrink_case

__all__ = [
    "COMPILED_PAIRS",
    "PARTITIONED_PAIRS",
    "CORPUS_SCHEMA_VERSION",
    "ENGINE_PAIRS",
    "FAMILY_SPACE",
    "LABEL_SCHEMES",
    "CaseOutcome",
    "EnginePair",
    "FuzzCase",
    "FuzzFailure",
    "FuzzReport",
    "case_filename",
    "corrupt_corpus_files",
    "fuzz_run",
    "generate_case",
    "load_case",
    "load_corpus",
    "pair_names",
    "pairs_for_backend",
    "replay_corpus",
    "run_case",
    "run_cases_batched",
    "save_case",
    "shrink_case",
]
