"""Greedy minimization of failing cases (delta-debugging lite).

A raw fuzz failure on a 24-node G(n,p) instance is a poor bug report;
the same divergence on a 4-node path is a unit test.  The shrinker
repeatedly applies structural edits — each of which keeps the case valid
by construction — and accepts an edit iff the failure still reproduces:

1. **node chunks** — remove halves, then quarters, ... then single
   nodes (with their incident edges, colors, and lists);
2. **single edges** — remove one edge at a time (surviving lists only
   grow slack, so validity is preserved);
3. **list colors** — for the list-carrying pairs, drop list colors
   while each list stays above the pair's validity floor
   (:meth:`FuzzCase.min_list_size`);
4. **configuration** — try the default initial coloring instead of an
   explicit one, and smaller defect budgets;
5. **fault plan** — drop the fault plan entirely, then individual fault
   modes, then shrink its window parameters toward their floors.  A
   failure that survives without faults is an engine bug, not a fault
   bug; one that needs exactly ``p_drop`` is half-diagnosed already.

Passes repeat until a whole sweep makes no progress (a local minimum:
every single remaining node/edge/color is load-bearing for the failure)
or the attempt budget is exhausted.  The predicate defaults to "the
differential check still fails", but mutation tests inject their own.
"""

from __future__ import annotations

from typing import Callable

from .case import FuzzCase
from .differential import EnginePair, run_case


def _without_nodes(case: FuzzCase, drop: set[int]) -> FuzzCase:
    keep = [v for v in case.nodes if v not in drop]
    return case.replace(
        nodes=keep,
        edges=[(u, v) for u, v in case.edges if u not in drop and v not in drop],
        initial_colors=(
            None
            if case.initial_colors is None
            else {v: c for v, c in case.initial_colors.items() if v not in drop}
        ),
        lists=(
            None
            if case.lists is None
            else {v: list(lst) for v, lst in case.lists.items() if v not in drop}
        ),
    )


def default_predicate(
    pairs: dict[str, EnginePair] | None = None,
) -> Callable[[FuzzCase], bool]:
    """The standard shrink predicate: the differential check still fails."""

    def still_fails(candidate: FuzzCase) -> bool:
        return not run_case(candidate, pairs=pairs).ok

    return still_fails


def shrink_case(
    case: FuzzCase,
    predicate: Callable[[FuzzCase], bool] | None = None,
    max_attempts: int = 500,
) -> FuzzCase:
    """Minimize ``case`` while ``predicate`` holds (default: still fails).

    Returns the smallest case found; the input case is never mutated.
    ``max_attempts`` bounds predicate evaluations, so a pathologically
    slow reproduction cannot hang a fuzz run.
    """
    predicate = predicate if predicate is not None else default_predicate()
    budget = [max_attempts]

    def attempt(candidate: FuzzCase) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        try:
            candidate.check_valid()
        except ValueError:  # pragma: no cover - edits preserve validity
            return False
        return predicate(candidate)

    current = case.replace(note=case.note)  # deep copy via replace
    progress = True
    while progress and budget[0] > 0:
        progress = False

        # -- pass 1: node chunks, halving down to singletons -------------
        chunk = max(1, len(current.nodes) // 2)
        while chunk >= 1 and budget[0] > 0:
            removed_any = False
            i = 0
            while i < len(current.nodes) and budget[0] > 0:
                drop = set(current.nodes[i : i + chunk])
                if len(drop) < len(current.nodes):  # keep at least one node
                    candidate = _without_nodes(current, drop)
                    if attempt(candidate):
                        current = candidate
                        progress = removed_any = True
                        continue  # same i now points at the next chunk
                i += chunk
            if chunk == 1:
                # repeat singleton sweeps until one removes nothing
                chunk = 1 if removed_any else 0
            else:
                chunk //= 2

        # -- pass 2: single edges ----------------------------------------
        i = 0
        while i < len(current.edges) and budget[0] > 0:
            candidate = current.replace(
                edges=current.edges[:i] + current.edges[i + 1 :]
            )
            if attempt(candidate):
                current = candidate
                progress = True
            else:
                i += 1

        # -- pass 3: shrink color lists ----------------------------------
        if current.lists is not None and budget[0] > 0:
            degree = {v: 0 for v in current.nodes}
            for u, v in current.edges:
                degree[u] += 1
                degree[v] += 1
            for v in list(current.lists):
                lst = current.lists[v]
                floor = current.min_list_size(degree[v])
                j = len(lst) - 1
                while len(lst) > floor and j >= 0 and budget[0] > 0:
                    shrunk = lst[:j] + lst[j + 1 :]
                    candidate = current.replace(
                        lists={**current.lists, v: shrunk}
                    )
                    if attempt(candidate):
                        current = candidate
                        lst = shrunk
                        progress = True
                    j -= 1

        # -- pass 4: simplify configuration ------------------------------
        if current.initial_colors is not None and budget[0] > 0:
            candidate = current.replace(initial_colors=None)
            if attempt(candidate):
                current = candidate
                progress = True
        d = 0
        while d < current.defect and budget[0] > 0:
            candidate = current.replace(defect=d)
            if attempt(candidate):
                current = candidate
                progress = True
                break
            d += 1

        # -- pass 5: shrink the fault plan -------------------------------
        if current.fault is not None and budget[0] > 0:
            candidate = current.replace(fault=None)
            if attempt(candidate):
                current = candidate
                progress = True
        if current.fault is not None:
            for key in [k for k in sorted(current.fault) if k.startswith("p_")]:
                if budget[0] <= 0:
                    break
                candidate = current.replace(
                    fault={k: v for k, v in current.fault.items() if k != key}
                )
                if attempt(candidate):
                    current = candidate
                    progress = True
            for key, floor in (
                ("max_delay", 1),
                ("crash_horizon", 1),
                ("recovery_rounds", 1),
            ):
                value = current.fault.get(key)
                if budget[0] <= 0 or value is None or value <= floor:
                    continue
                candidate = current.replace(fault={**current.fault, key: floor})
                if attempt(candidate):
                    current = candidate
                    progress = True

    if not current.note:
        current = current.replace(note=f"shrunk from n={case.n} m={case.m}")
    return current
