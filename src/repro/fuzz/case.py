"""The concrete, serializable unit of differential testing.

A :class:`FuzzCase` pins *everything* one differential trial needs — the
exact node labels, edge list, and per-pair configuration (defect budget,
initial colors, color lists) — rather than the generator parameters that
produced it.  That choice is what makes the rest of the subsystem work:

* the shrinker edits cases structurally (drop a node, drop an edge,
  shrink a list) and every edit is again a valid case;
* the corpus serializes cases as plain JSON, so a failure found once is
  replayable forever, independent of generator evolution;
* the differential runner materializes the same graph object for both
  engines, so a divergence is attributable to the engines and never to
  instance construction.

Node labels are integers but deliberately *not* required to be
``0..n-1`` or sorted-contiguous — the label regimes the fuzzer probes
are exactly the ones hand-written tests forget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from ..core.colorspace import ColorSpace
from ..core.instance import ListDefectiveInstance

#: Version of the corpus JSON layout.  Bump when :meth:`FuzzCase.to_dict`
#: gains, loses, or reinterprets fields; loaders reject foreign versions.
#: v2: cases gained the ``fault`` axis (an optional
#: :meth:`repro.faults.FaultPlan.to_dict` spec for the ``linial`` pair).
#: v3: the list-size validity rule became pair-dependent — the ``fk24``
#: pair needs only ``floor(deg/(defect+1)) + 1`` colors per list (its
#: defect budget revives colors the zero-defect greedy rule would
#: forbid), and ``defect``/``fault`` now also apply to ``fk24``.
CORPUS_SCHEMA_VERSION = 3


@dataclass
class FuzzCase:
    """One differential trial: an engine pair plus its concrete input.

    Attributes
    ----------
    pair:
        Engine-pair name (see :data:`repro.fuzz.differential.ENGINE_PAIRS`).
    nodes / edges:
        The topology, with explicit (possibly non-contiguous, unsorted)
        integer labels.  ``edges`` entries are ``(u, v)`` pairs over
        ``nodes``.
    defect:
        Defect budget for the ``linial`` / ``defective_split`` pairs.
    initial_colors:
        Optional explicit initial coloring for the ``linial`` pair
        (distinct values, so the input coloring is proper); ``None`` uses
        both engines' shared default (rank in sorted label order).
    lists / space_size:
        Per-node color lists and the size of the common color space.
        The ``greedy`` pair needs ``deg(v) + 1`` colors per list; the
        ``fk24`` pair only ``floor(deg(v)/(defect+1)) + 1`` — its defect
        budget lets up to ``defect`` same-colored out-neighbors share
        each color.
    fault:
        Optional :meth:`repro.faults.FaultPlan.to_dict` spec for the
        ``linial`` / ``fk24`` pairs.  When set, both engines run under the identical
        seeded fault schedule and the trial's contract becomes pure
        engine equality (outputs, metrics, per-round accounting *and*
        fault counts); the semantic oracle is skipped, since a dropped
        message can legitimately break validity.
    seed:
        Provenance: the generator seed that produced the case (``None``
        for hand-written or shrunk-beyond-recognition cases).
    note:
        Free-form provenance for corpus archaeology.
    """

    pair: str
    nodes: list[int]
    edges: list[tuple[int, int]]
    defect: int = 0
    initial_colors: dict[int, int] | None = None
    lists: dict[int, list[int]] | None = None
    space_size: int | None = None
    fault: dict[str, Any] | None = None
    seed: int | str | None = None
    note: str = ""
    schema: int = field(default=CORPUS_SCHEMA_VERSION)

    # ------------------------------------------------------------------
    # validity
    # ------------------------------------------------------------------
    def check_valid(self) -> None:
        """Raise ``ValueError`` when the case is structurally inconsistent.

        The shrinker relies on this staying cheap: every candidate edit is
        validated before the (much more expensive) differential run.
        """
        node_set = set(self.nodes)
        if len(node_set) != len(self.nodes):
            raise ValueError("duplicate node labels")
        for u, v in self.edges:
            if u == v:
                raise ValueError(f"self-loop at {u}")
            if u not in node_set or v not in node_set:
                raise ValueError(f"edge ({u},{v}) references unknown node")
        if self.defect < 0:
            raise ValueError(f"negative defect {self.defect}")
        if self.initial_colors is not None:
            if set(self.initial_colors) != node_set:
                raise ValueError("initial_colors keys != nodes")
            values = list(self.initial_colors.values())
            if len(set(values)) != len(values):
                raise ValueError("initial_colors must be distinct (proper input)")
            if any(c < 0 for c in values):
                raise ValueError("initial colors must be non-negative")
        if self.lists is not None:
            if self.space_size is None:
                raise ValueError("lists require space_size")
            if set(self.lists) != node_set:
                raise ValueError("lists keys != nodes")
            degree = {v: 0 for v in self.nodes}
            for u, v in self.edges:
                degree[u] += 1
                degree[v] += 1
            for v, lst in self.lists.items():
                if len(set(lst)) != len(lst):
                    raise ValueError(f"node {v}: duplicate list colors")
                min_len = self.min_list_size(degree[v])
                if len(lst) < min_len:
                    raise ValueError(
                        f"node {v}: list size {len(lst)} < required "
                        f"{min_len} for pair {self.pair!r} at degree "
                        f"{degree[v]}"
                    )
                if any(x < 0 or x >= self.space_size for x in lst):
                    raise ValueError(f"node {v}: list color outside space")
        if self.fault is not None:
            from ..faults import FaultPlan

            # FaultPlan.from_dict rejects unknown keys and invalid
            # rates/windows, so a shrunk or hand-edited fault spec can
            # never silently degenerate into a different adversary
            FaultPlan.from_dict(self.fault)

    def min_list_size(self, degree: int) -> int:
        """The pair-dependent validity floor for a list at ``degree``.

        ``fk24`` tolerates ``defect`` same-colored out-neighbors per
        color, so only ``floor(deg/(defect+1)) + 1`` colors are needed
        for a viable candidate to always exist; every other list-
        carrying pair keeps the zero-defect ``deg + 1`` rule.
        """
        if self.pair == "fk24":
            return degree // (self.defect + 1) + 1
        return degree + 1

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def graph(self) -> nx.Graph:
        """The case's topology as a fresh undirected ``networkx`` graph."""
        g = nx.Graph()
        g.add_nodes_from(self.nodes)
        g.add_edges_from(self.edges)
        return g

    def instance(self) -> ListDefectiveInstance:
        """The ``greedy`` pair's zero-defect list instance."""
        if self.lists is None or self.space_size is None:
            raise ValueError(f"case for pair {self.pair!r} carries no lists")
        return ListDefectiveInstance(
            self.graph(),
            ColorSpace(self.space_size),
            {v: tuple(lst) for v, lst in self.lists.items()},
            {v: {x: 0 for x in lst} for v, lst in self.lists.items()},
        )

    def fk24_instance(self) -> ListDefectiveInstance:
        """The ``fk24`` pair's list instance with uniform defects."""
        if self.lists is None or self.space_size is None:
            raise ValueError(f"case for pair {self.pair!r} carries no lists")
        return ListDefectiveInstance(
            self.graph(),
            ColorSpace(self.space_size),
            {v: tuple(lst) for v, lst in self.lists.items()},
            {
                v: {x: self.defect for x in lst}
                for v, lst in self.lists.items()
            },
        )

    @property
    def n(self) -> int:
        return len(self.nodes)

    @property
    def m(self) -> int:
        return len(self.edges)

    def describe(self) -> str:
        """One-line human summary (CLI and failure reports)."""
        bits = [f"pair={self.pair}", f"n={self.n}", f"m={self.m}"]
        if self.defect:
            bits.append(f"defect={self.defect}")
        if self.initial_colors is not None:
            bits.append("explicit-init")
        if self.lists is not None:
            bits.append(f"space={self.space_size}")
        if self.fault is not None:
            modes = sorted(k[2:] for k in self.fault if k.startswith("p_"))
            bits.append(f"fault={'+'.join(modes) or 'null'}")
        if self.seed is not None:
            bits.append(f"seed={self.seed}")
        return " ".join(bits)

    # ------------------------------------------------------------------
    # serialization (JSON corpus entries)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict.  Int-keyed mappings become string-keyed (JSON
        object keys are strings); :meth:`from_dict` restores them."""
        return {
            "schema": self.schema,
            "pair": self.pair,
            "nodes": list(self.nodes),
            "edges": [[int(u), int(v)] for u, v in self.edges],
            "defect": int(self.defect),
            "initial_colors": (
                None
                if self.initial_colors is None
                else {str(v): int(c) for v, c in sorted(self.initial_colors.items())}
            ),
            "lists": (
                None
                if self.lists is None
                else {str(v): [int(x) for x in lst] for v, lst in sorted(self.lists.items())}
            ),
            "space_size": self.space_size,
            "fault": None if self.fault is None else dict(sorted(self.fault.items())),
            "seed": self.seed,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FuzzCase":
        """Inverse of :meth:`to_dict`; raises on foreign schema versions."""
        schema = data.get("schema")
        if schema != CORPUS_SCHEMA_VERSION:
            raise ValueError(
                f"fuzz case schema {schema!r} != supported {CORPUS_SCHEMA_VERSION}"
            )
        case = cls(
            pair=str(data["pair"]),
            nodes=[int(v) for v in data["nodes"]],
            edges=[(int(u), int(v)) for u, v in data["edges"]],
            defect=int(data.get("defect", 0)),
            initial_colors=(
                None
                if data.get("initial_colors") is None
                else {int(v): int(c) for v, c in data["initial_colors"].items()}
            ),
            lists=(
                None
                if data.get("lists") is None
                else {int(v): [int(x) for x in lst] for v, lst in data["lists"].items()}
            ),
            space_size=(
                None if data.get("space_size") is None else int(data["space_size"])
            ),
            fault=(
                None if data.get("fault") is None else dict(data["fault"])
            ),
            seed=data.get("seed"),
            note=str(data.get("note", "")),
            schema=int(schema),
        )
        case.check_valid()
        return case

    def replace(self, **changes: Any) -> "FuzzCase":
        """A copy with ``changes`` applied (shrinker edit primitive)."""
        from dataclasses import replace as _dc_replace

        return _dc_replace(
            self,
            **{
                **dict(
                    nodes=list(self.nodes),
                    edges=[tuple(e) for e in self.edges],
                    initial_colors=(
                        None if self.initial_colors is None else dict(self.initial_colors)
                    ),
                    lists=(
                        None
                        if self.lists is None
                        else {v: list(lst) for v, lst in self.lists.items()}
                    ),
                    fault=None if self.fault is None else dict(self.fault),
                ),
                **changes,
            },
        )
