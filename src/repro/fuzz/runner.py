"""The fuzz loop: generate → run → shrink → serialize.

:func:`fuzz_run` drives ``iterations`` rounds; each round generates one
case *per engine pair* from a seed derived deterministically from
``(seed, iteration, pair)``, so any failure names the exact generator
stream that produced it and a re-run with the same arguments retries
the identical trials.  Failures are shrunk (unless disabled) and, when a
corpus directory is given, serialized as pinned regression entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .case import FuzzCase
from .corpus import save_case
from .differential import (
    ENGINE_PAIRS,
    CaseOutcome,
    EnginePair,
    pairs_for_backend,
    run_case,
    run_cases_batched,
)
from .generator import generate_case
from .shrink import default_predicate, shrink_case


def derive_seed(seed: int, iteration: int, pair: str) -> str:
    """The per-trial generator seed (stable, human-readable provenance)."""
    return f"{seed}:{iteration}:{pair}"


@dataclass
class FuzzFailure:
    """One divergence: the raw case, its shrunk form, and the verdicts."""

    case: FuzzCase
    outcome: CaseOutcome
    shrunk: FuzzCase | None = None
    shrunk_outcome: CaseOutcome | None = None
    saved_to: Path | None = None

    def describe(self) -> str:
        out = self.outcome.describe()
        if self.shrunk is not None:
            out += f"\n  shrunk to: {self.shrunk.describe()}"
        if self.saved_to is not None:
            out += f"\n  pinned at: {self.saved_to}"
        return out


@dataclass
class FuzzReport:
    """Aggregate result of one :func:`fuzz_run`."""

    seed: int
    iterations: int
    backend: str = "vectorized"
    cases_run: int = 0
    skipped: int = 0
    per_pair: dict[str, int] = field(default_factory=dict)
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        pairs = ", ".join(f"{p}={k}" for p, k in sorted(self.per_pair.items()))
        head = (
            f"fuzz seed={self.seed} iterations={self.iterations} "
            f"backend={self.backend}: "
            f"{self.cases_run} differential trials ({pairs}) — "
            f"{len(self.failures)} failure(s)"
        )
        if self.skipped:
            head += (
                f" [{self.skipped} fault case(s) skipped: backend "
                "does not support fault injection]"
            )
        return "\n".join([head] + [f.describe() for f in self.failures])


def fuzz_run(
    seed: int = 0,
    iterations: int = 50,
    pair_names: list[str] | None = None,
    corpus_dir: Path | str | None = None,
    shrink: bool = True,
    max_failures: int = 5,
    pairs: dict[str, EnginePair] | None = None,
    max_shrink_attempts: int = 500,
    batch_size: int = 0,
    backend: str = "vectorized",
) -> FuzzReport:
    """Run the differential fuzz loop (see module docstring).

    Parameters
    ----------
    pair_names:
        Subset of engine pairs to exercise (default: all registered).
    corpus_dir:
        When set, every shrunk failure is serialized there.
    max_failures:
        Stop early after this many distinct failures — fuzzing past a
        systemic breakage only buries the signal.
    pairs:
        Registry override for mutation tests (injected broken engines).
        Takes precedence over ``backend``.
    batch_size:
        When > 1, trials run in chunks of this size through
        :func:`~repro.fuzz.run_cases_batched` (the fast side of each
        chunk is one block-diagonal execution).  Trial generation order,
        seeds, outcomes, shrinking, and pinning are unchanged — only the
        execution strategy differs.  0/1 keep the per-case loop.
    backend:
        Which :mod:`repro.sim.backends` backend supplies the fast side
        of each pair (default ``"vectorized"``).  Resolved through
        :func:`~repro.fuzz.differential.pairs_for_backend`.  When the
        backend declares ``supports_faults=False``, generated fault
        cases are counted in :attr:`FuzzReport.skipped` and not run —
        the generation stream itself is untouched, so seeds stay
        comparable across backends.
    """
    spec = None
    if pairs is not None:
        registry = pairs
    else:
        from ..sim.backends import get_backend

        spec = get_backend(backend)
        registry = pairs_for_backend(backend)
    names = list(pair_names) if pair_names is not None else list(registry)
    unknown = [p for p in names if p not in registry]
    if unknown:
        raise KeyError(
            f"unknown engine pair(s) {', '.join(unknown)}; "
            f"options: {', '.join(registry)}"
        )
    report = FuzzReport(seed=seed, iterations=iterations, backend=backend)
    skip_faults = spec is not None and not spec.supports_faults

    def runnable(case: FuzzCase) -> bool:
        """Account backend-capability skips; False drops the case."""
        if skip_faults and case.fault is not None:
            report.skipped += 1
            return False
        return True

    def handle(case: FuzzCase, outcome: CaseOutcome) -> bool:
        """Account one trial; True when the failure budget is exhausted."""
        report.cases_run += 1
        report.per_pair[case.pair] = report.per_pair.get(case.pair, 0) + 1
        if outcome.ok:
            return False
        failure = FuzzFailure(case=case, outcome=outcome)
        if shrink:
            failure.shrunk = shrink_case(
                case,
                predicate=default_predicate(pairs=registry),
                max_attempts=max_shrink_attempts,
            )
            failure.shrunk_outcome = run_case(failure.shrunk, pairs=registry)
        if corpus_dir is not None:
            failure.saved_to = save_case(
                failure.shrunk if failure.shrunk is not None else case,
                corpus_dir,
            )
        report.failures.append(failure)
        return len(report.failures) >= max_failures

    if batch_size > 1:
        queue = [
            case
            for iteration in range(iterations)
            for pair in names
            if runnable(
                case := generate_case(derive_seed(seed, iteration, pair), pair=pair)
            )
        ]
        for start in range(0, len(queue), batch_size):
            chunk = queue[start : start + batch_size]
            for case, outcome in zip(
                chunk, run_cases_batched(chunk, pairs=registry)
            ):
                if handle(case, outcome):
                    return report
        return report

    for iteration in range(iterations):
        for pair in names:
            case = generate_case(derive_seed(seed, iteration, pair), pair=pair)
            if not runnable(case):
                continue
            if handle(case, run_case(case, pairs=registry)):
                return report
    return report
