"""The JSON failure corpus: found once, pinned forever.

Every shrunk failure is serialized as one pretty-printed JSON file named
``<pair>-<digest>.json`` (digest of the case content, so re-finding the
same minimal case is idempotent).  The files under ``tests/corpus/`` are
replayed by the test suite and by ``repro-cli fuzz`` / CI on every run:
a corpus entry is a regression test that asserts the divergence it once
witnessed stays fixed.

Writes are crash-safe: :func:`save_case` lands each entry through
:func:`repro.atomic.atomic_write_text` — a uniquely-named sibling temp
file (pid + random token) plus ``os.replace``, the same publisher the
sweep cache uses — so an interrupted write can never leave a truncated
JSON behind, and two processes pinning the same case concurrently can
never interleave into each other's staging file.  :func:`load_corpus`
also sweeps staging litter older than an hour.
Reads are crash-*tolerant*: an entry that no longer parses — e.g. one
written by a pre-fix version that died mid-``write_text`` — is
quarantined in place as ``<name>.json.corrupt`` and skipped with a
warning instead of poisoning the whole replay; :func:`corrupt_corpus_files`
lists the quarantined files so CI and humans see what was set aside.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path

from ..atomic import atomic_write_text, sweep_stale_tmp
from .case import FuzzCase
from .differential import CaseOutcome, EnginePair, run_case


def case_filename(case: FuzzCase) -> str:
    """Deterministic corpus filename: ``<pair>-<content digest>.json``."""
    payload = json.dumps(
        {k: v for k, v in case.to_dict().items() if k not in ("seed", "note")},
        sort_keys=True,
    )
    digest = hashlib.sha256(payload.encode()).hexdigest()[:12]
    return f"{case.pair}-{digest}.json"


def save_case(case: FuzzCase, corpus_dir: Path | str) -> Path:
    """Atomically write ``case`` into the corpus; returns the file path.

    The payload lands through a uniquely-named sibling temp file plus
    ``os.replace`` (:func:`repro.atomic.atomic_write_text`), so a crash
    mid-write leaves either the previous entry or no entry — never a
    truncated JSON that would fail the next replay — and concurrent
    writers of the same case cannot tear each other's staging file.
    """
    path = Path(corpus_dir) / case_filename(case)
    return atomic_write_text(
        path, json.dumps(case.to_dict(), indent=1, sort_keys=True) + "\n"
    )


def load_case(path: Path | str) -> FuzzCase:
    """Load (and validate) one corpus entry."""
    return FuzzCase.from_dict(json.loads(Path(path).read_text()))


def quarantine_corrupt_case(path: Path) -> Path:
    """Rename an unreadable entry to ``<name>.json.corrupt`` (best effort).

    The quarantined file keeps its bytes for post-mortems but no longer
    matches the ``*.json`` replay glob, so one truncated entry cannot
    fail every future corpus replay.
    """
    quarantined = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, quarantined)
    except OSError:  # pragma: no cover - racing replay / read-only corpus
        pass
    return quarantined


def corrupt_corpus_files(corpus_dir: Path | str) -> list[Path]:
    """Quarantined ``.json.corrupt`` files under ``corpus_dir`` (sorted)."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    return sorted(corpus_dir.glob("*.json.corrupt"))


def load_corpus(corpus_dir: Path | str) -> list[tuple[Path, FuzzCase]]:
    """Every readable corpus entry, sorted by filename for stable replay.

    Entries that fail to parse or validate (a truncated write from a
    crashed process, a hand-edit gone wrong) are quarantined as
    ``<name>.json.corrupt`` and skipped with a warning — the rest of the
    corpus still replays.
    """
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    # staging litter from crashed writers; age-gated so a live
    # save_case in another process keeps its in-flight .tmp
    sweep_stale_tmp(corpus_dir)
    out: list[tuple[Path, FuzzCase]] = []
    for path in sorted(corpus_dir.glob("*.json")):
        try:
            out.append((path, load_case(path)))
        except (ValueError, KeyError, TypeError) as exc:
            quarantined = quarantine_corrupt_case(path)
            warnings.warn(
                f"corpus entry {path.name} is unreadable ({exc}); "
                f"quarantined as {quarantined.name}",
                stacklevel=2,
            )
    return out


def replay_corpus(
    corpus_dir: Path | str,
    pairs: dict[str, EnginePair] | None = None,
) -> list[tuple[Path, CaseOutcome]]:
    """Re-run the differential check on every pinned case.

    All entries are expected to pass (they encode *fixed* bugs); callers
    — the test suite, the CLI, CI — assert ``outcome.ok`` per entry.
    Unreadable entries are quarantined by :func:`load_corpus`, not
    replayed.
    """
    return [
        (path, run_case(case, pairs=pairs))
        for path, case in load_corpus(corpus_dir)
    ]
