"""The JSON failure corpus: found once, pinned forever.

Every shrunk failure is serialized as one pretty-printed JSON file named
``<pair>-<digest>.json`` (digest of the case content, so re-finding the
same minimal case is idempotent).  The files under ``tests/corpus/`` are
replayed by the test suite and by ``repro-cli fuzz`` / CI on every run:
a corpus entry is a regression test that asserts the divergence it once
witnessed stays fixed.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .case import FuzzCase
from .differential import CaseOutcome, EnginePair, run_case


def case_filename(case: FuzzCase) -> str:
    """Deterministic corpus filename: ``<pair>-<content digest>.json``."""
    payload = json.dumps(
        {k: v for k, v in case.to_dict().items() if k not in ("seed", "note")},
        sort_keys=True,
    )
    digest = hashlib.sha256(payload.encode()).hexdigest()[:12]
    return f"{case.pair}-{digest}.json"


def save_case(case: FuzzCase, corpus_dir: Path | str) -> Path:
    """Write ``case`` into the corpus; returns the file path."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / case_filename(case)
    path.write_text(json.dumps(case.to_dict(), indent=1, sort_keys=True) + "\n")
    return path


def load_case(path: Path | str) -> FuzzCase:
    """Load (and validate) one corpus entry."""
    return FuzzCase.from_dict(json.loads(Path(path).read_text()))


def load_corpus(corpus_dir: Path | str) -> list[tuple[Path, FuzzCase]]:
    """Every corpus entry, sorted by filename for stable replay order."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    return [(p, load_case(p)) for p in sorted(corpus_dir.glob("*.json"))]


def replay_corpus(
    corpus_dir: Path | str,
    pairs: dict[str, EnginePair] | None = None,
) -> list[tuple[Path, CaseOutcome]]:
    """Re-run the differential check on every pinned case.

    All entries are expected to pass (they encode *fixed* bugs); callers
    — the test suite, the CLI, CI — assert ``outcome.ok`` per entry.
    """
    return [
        (path, run_case(case, pairs=pairs))
        for path, case in load_corpus(corpus_dir)
    ]
