"""Crash-safe file publication shared by every cache/corpus/JSONL writer.

The repo's persistent artifacts (sweep cache cells, fuzz corpus cases,
observability JSONL files) all publish through the same move: write the
full payload to a sibling temp file, then ``os.replace`` it over the
destination so readers only ever see an old-complete or new-complete
file.  The subtlety this module centralizes is the *temp file name*:

* a **fixed** sibling name (``cell.tmp``) is shared by every concurrent
  writer of the same destination, so two workers publishing the same
  sweep cell interleave their writes in one temp file and ``os.replace``
  then publishes a torn hybrid — atomic against crashes, not against
  concurrency.  :func:`atomic_write_text` instead derives a **unique**
  sibling name from the writing process id plus a random nonce, so
  concurrent publishers each stage their own complete payload and the
  last rename wins whole;
* a writer that crashes between staging and renaming leaves its temp
  file behind.  :func:`atomic_write_text` cleans up on any in-process
  failure, and :func:`sweep_stale_tmp` reaps the litter of *killed*
  writers (age-gated so a live writer's in-flight staging file is never
  reaped from under it).

Loaders should ignore ``*.tmp`` siblings entirely — they are staging
state, never published data.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path

#: Suffix every staged-but-unpublished sibling carries; loaders must
#: treat files matching ``*.tmp`` as invisible.
TMP_SUFFIX = ".tmp"

#: Default age (seconds) past which a ``*.tmp`` sibling is presumed
#: orphaned by a killed writer.  Generous: a live writer stages and
#: renames within one payload serialization, not hours.
STALE_TMP_AGE_S = 3600.0


def _staging_path(path: Path) -> Path:
    """A collision-free sibling staging name for ``path``.

    Embeds the pid plus a random nonce so concurrent writers of the same
    destination — including two *threads* of one process — never share a
    staging file, and keeps the :data:`TMP_SUFFIX` last so stale-file
    sweeps and loader ignore-globs need only one pattern.
    """
    return path.with_name(
        f"{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}{TMP_SUFFIX}"
    )


def atomic_write_text(path: Path | str, text: str) -> Path:
    """Publish ``text`` at ``path`` atomically (crash- and race-safe).

    Stages through a unique sibling temp file (see :func:`_staging_path`)
    and ``os.replace``\\ s it into place, creating parent directories as
    needed.  On any failure the staging file is removed, so aborted
    writes leave neither torn destinations nor litter.  Returns ``path``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _staging_path(path)
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass  # reaped later by sweep_stale_tmp
        raise
    return path


def sweep_stale_tmp(
    directory: Path | str, max_age_s: float = STALE_TMP_AGE_S
) -> list[Path]:
    """Remove orphaned ``*.tmp`` staging files under ``directory``.

    Only files older than ``max_age_s`` are reaped, so a concurrent
    writer's in-flight staging file survives; files that vanish or
    resist deletion mid-sweep (a racing sweep, permissions) are skipped
    silently.  Returns the paths actually removed (sorted).
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    import time

    cutoff = time.time() - max_age_s
    removed: list[Path] = []
    for tmp in sorted(directory.glob(f"*{TMP_SUFFIX}")):
        try:
            if tmp.stat().st_mtime <= cutoff:
                tmp.unlink()
                removed.append(tmp)
        except OSError:
            continue
    return removed
