"""ASCII tables and figures for the experiment harness.

The benchmark/experiment modules print their results through these helpers
so every experiment output has the same look: a fixed-width table for
"table" experiments and a log-friendly ASCII series plot for "figure"
experiments.  No plotting libraries are used (the environment is headless).
"""

from __future__ import annotations

import math
from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table with a rule under the header."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def ascii_series(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    logy: bool = False,
) -> str:
    """A minimal multi-series ASCII scatter/line chart.

    Each series gets a marker character; points are binned onto a
    ``width x height`` character grid.  Intended for eyeballing the *shape*
    of a measured curve (linear vs sqrt vs log), which is what the
    reproduction claims are about.
    """
    if not xs or not series:
        return "(no data)"
    markers = "*o+x#@%&"
    ys_all = [y for s in series.values() for y in s if y is not None]
    if not ys_all:
        return "(no data)"

    def ty(y: float) -> float:
        return math.log10(max(y, 1e-12)) if logy else y

    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(map(ty, ys_all)), max(map(ty, ys_all))
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, ys) in enumerate(series.items()):
        mark = markers[idx % len(markers)]
        for x, y in zip(xs, ys):
            if y is None:
                continue
            col = int((x - xmin) / xspan * (width - 1))
            row = int((ty(y) - ymin) / yspan * (height - 1))
            grid[height - 1 - row][col] = mark
    lines = []
    if title:
        lines.append(title)
    top = f"{(10 ** ymax if logy else ymax):.3g}"
    bot = f"{(10 ** ymin if logy else ymin):.3g}"
    lines.append(f"y_max={top}" + (" (log scale)" if logy else ""))
    lines.extend("|" + "".join(r) for r in grid)
    lines.append("+" + "-" * width)
    lines.append(f"y_min={bot}   x: {xmin:g} .. {xmax:g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}" for i, name in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def fit_exponent(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log y on log x: the empirical power-law exponent.

    Used to check shape claims such as "rounds grow like sqrt(Delta)"
    (exponent ~ 0.5) or "colors grow like (Delta/d)^2" (exponent ~ 2).
    """
    pts = [
        (math.log(x), math.log(y))
        for x, y in zip(xs, ys)
        if x > 0 and y is not None and y > 0
    ]
    if len(pts) < 2:
        raise ValueError("need at least two positive points to fit")
    n = len(pts)
    sx = sum(p[0] for p in pts)
    sy = sum(p[1] for p in pts)
    sxx = sum(p[0] * p[0] for p in pts)
    sxy = sum(p[0] * p[1] for p in pts)
    denom = n * sxx - sx * sx
    if abs(denom) < 1e-12:
        raise ValueError("degenerate x values")
    return (n * sxy - sx * sy) / denom
