"""Parameter formulas and theoretical bounds from the paper.

Two parameter regimes coexist:

* **Paper mode** — the literal formulas: Eq. (4)/(5) for tau/tau', kappa of
  Theorem 1.1, the round bounds of each theorem.  These are used to print
  "paper" columns next to measured values in the experiments, and to verify
  monotonicity/shape properties in tests.
* **Practical mode** (:class:`ParamScale`) — the algorithms are parameterized
  by (tau, tau', k', alpha) directly; the paper constants would require list
  sizes far beyond any feasible color space, so experiments run with scaled
  constants and E07 measures the feasibility frontier.  This substitution is
  documented in DESIGN.md §3.2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def log2c(x: float) -> float:
    """``log2`` clamped below at 1 (the paper's logs are all >= 1-ish)."""
    return max(1.0, math.log2(max(2.0, x)))


def loglog2c(x: float) -> float:
    return max(1.0, math.log2(max(2.0, math.log2(max(2.0, x)))))


def log_star(n: float) -> int:
    """Iterated logarithm: number of log2 applications to reach <= 1."""
    if n <= 1:
        return 0
    count = 0
    x = float(n)
    while x > 1.0:
        x = math.log2(x)
        count += 1
    return count


# ----------------------------------------------------------------------
# Paper parameter formulas
# ----------------------------------------------------------------------
def tau_paper(h: int, space_size: int, m: int) -> int:
    """Eq. (4): tau(h, C, m) = ceil(8h + 2 loglog|C| + 2 loglog m + 16)."""
    if h < 1 or space_size < 1 or m < 1:
        raise ValueError("h, |C|, m must all be >= 1")
    return math.ceil(8 * h + 2 * loglog2c(space_size) + 2 * loglog2c(m) + 16)


def tau_prime_paper(h: int, space_size: int, m: int) -> int:
    """Eq. (5): tau' = 2^(tau - ceil(2h + log(2e)))."""
    t = tau_paper(h, space_size, m)
    return 2 ** max(1, t - math.ceil(2 * h + math.log2(2 * math.e)))


def kappa_theorem_1_1(beta: int, space_size: int, m: int) -> float:
    """Theorem 1.1's kappa(beta, C, m).

    ``(log beta + loglog|C| + loglog m) * (loglog beta + loglog m)
    * log^2 log beta``.
    """
    if beta < 1:
        raise ValueError("beta must be >= 1")
    a = log2c(beta) + loglog2c(space_size) + loglog2c(m)
    b = loglog2c(beta) + loglog2c(m)
    c = loglog2c(beta) ** 2
    return a * b * c


def theorem_1_1_message_bits(
    space_size: int, max_list: int, beta: int, m: int
) -> float:
    """Theorem 1.1 message bound: O(min{|C|, Lambda log|C|} + log beta + log m)."""
    return (
        min(space_size, max(1, max_list) * log2c(space_size))
        + log2c(beta)
        + log2c(m)
    )


def theorem_1_3_rounds(
    lam: int, kappa: float, nu: float, delta: int, t_inner: float, n: int
) -> float:
    """Theorem 1.3 (oriented variant): O(Lambda^{nu/(1+nu)} kappa^{1/(1+nu)}
    log(Delta) T + log* n)."""
    lam = max(1, lam)
    return (
        lam ** (nu / (1 + nu))
        * kappa ** (1 / (1 + nu))
        * log2c(delta)
        * t_inner
        + log_star(n)
    )


def theorem_1_4_rounds(delta: int, n: int) -> float:
    """Theorem 1.4 for |C| = O(Delta):
    O(sqrt(Delta) log^2 Delta log^6 log Delta + log* n)."""
    d = max(2, delta)
    return (
        math.sqrt(d) * log2c(d) ** 2 * loglog2c(d) ** 6 + log_star(n)
    )


def linial_colors(delta: int) -> int:
    """Linial target: O(Delta^2) colors — we report the concrete q^2 with
    q the smallest prime > 2*Delta used by our construction."""
    return smallest_prime_above(2 * max(1, delta)) ** 2


def kuhn09_defective_colors(delta: int, d: int) -> int:
    """[Kuh09]: d-defective coloring with O((Delta/d)^2) colors."""
    if d < 1:
        return linial_colors(delta)
    q = smallest_prime_above(max(2, math.ceil(delta / d)))
    return q * q


def beg18_arbdefective_rounds(delta: int, d: int, n: int) -> float:
    """[BEG18] reference round count O(Delta/(d+1) + log* n) (baseline row)."""
    return delta / (d + 1) + log_star(n)


def gk21_rounds(delta: int, n: int) -> float:
    """[GK21] reference: O(log^2 Delta * log n)."""
    return log2c(delta) ** 2 * log2c(n)


def fhk_local_rounds(delta: int, n: int) -> float:
    """[FHK16, BEG18, MT20] LOCAL reference: O(sqrt(Delta log Delta) + log* n)."""
    d = max(2, delta)
    return math.sqrt(d * log2c(d)) + log_star(n)


def fhk_congest_rounds(delta: int, n: int) -> float:
    """The FHK/MT algorithm naively run in CONGEST: each of its big messages
    (Theta(Delta log Delta) bits) costs ceil(Delta log Delta / log n) rounds."""
    d = max(2, delta)
    slowdown = max(1.0, d * log2c(d) / log2c(n))
    return fhk_local_rounds(delta, n) * slowdown


# ----------------------------------------------------------------------
# small number theory helper (shared with the Linial construction)
# ----------------------------------------------------------------------
def is_prime(x: int) -> bool:
    """Trial-division primality (fine for the small q of the schedules)."""
    if x < 2:
        return False
    if x < 4:
        return True
    if x % 2 == 0:
        return False
    f = 3
    while f * f <= x:
        if x % f == 0:
            return False
        f += 2
    return True


def smallest_prime_above(x: int) -> int:
    """The smallest prime strictly greater than ``x``."""
    p = max(2, x + 1)
    while not is_prime(p):
        p += 1
    return p


# ----------------------------------------------------------------------
# Practical parameter scale
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParamScale:
    """Scaled-down constants for running the OLDC algorithms in practice.

    Attributes
    ----------
    tau:
        The conflict threshold (paper Eq. (4) value is Theta(h + loglog...);
        practically a small constant works for moderate graphs).
    k_prime:
        Size of the candidate family ``K_v`` (paper: 2^h * tau', which is
        astronomically large; the pigeonhole arguments only need
        ``k_prime`` large relative to beta_v * (#conflicting sets), so small
        multiples of beta suffice in practice).
    alpha:
        List-size multiplier (the paper's "sufficiently large constant").
    seed:
        Seed of the shared PRF that replaces the exact greedy type
        assignment in `seeded` P2 mode (DESIGN.md §3.1).
    """

    tau: int = 3
    k_prime: int = 16
    alpha: float = 1.0
    seed: int = 0

    def with_(self, **kwargs) -> "ParamScale":
        from dataclasses import replace

        return replace(self, **kwargs)


DEFAULT_SCALE = ParamScale()
