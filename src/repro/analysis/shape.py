"""Statistical shape-checking utilities for the experiments.

Beyond the point-estimate :func:`repro.analysis.tables.fit_exponent`, the
experiments occasionally need:

* a goodness-of-fit measure for the power-law fit (:func:`fit_power_law`,
  returning exponent, prefactor, and R² in log-log space);
* a crossover finder (:func:`crossover`): the x at which one measured
  series overtakes another, by piecewise-linear interpolation — used to
  locate "who wins where" boundaries;
* seed-resampled exponent spread (:func:`exponent_spread`): the min/max
  exponent over leave-one-out subsets — a cheap robustness check that a
  fitted exponent is not carried by a single point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PowerLawFit:
    """``y ~ prefactor * x^exponent`` with log-log R²."""

    exponent: float
    prefactor: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.prefactor * x**self.exponent


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least squares in log-log space; requires >= 2 positive points."""
    pts = [
        (math.log(x), math.log(y))
        for x, y in zip(xs, ys)
        if x > 0 and y is not None and y > 0
    ]
    if len(pts) < 2:
        raise ValueError("need at least two positive points")
    n = len(pts)
    sx = sum(p[0] for p in pts)
    sy = sum(p[1] for p in pts)
    sxx = sum(p[0] ** 2 for p in pts)
    sxy = sum(p[0] * p[1] for p in pts)
    denom = n * sxx - sx * sx
    if abs(denom) < 1e-12:
        raise ValueError("degenerate x values")
    slope = (n * sxy - sx * sy) / denom
    intercept = (sy - slope * sx) / n
    mean_y = sy / n
    ss_tot = sum((py - mean_y) ** 2 for _px, py in pts)
    ss_res = sum((py - (slope * px + intercept)) ** 2 for px, py in pts)
    r2 = 1.0 if ss_tot < 1e-12 else 1.0 - ss_res / ss_tot
    return PowerLawFit(slope, math.exp(intercept), r2)


def exponent_spread(
    xs: Sequence[float], ys: Sequence[float]
) -> tuple[float, float]:
    """(min, max) exponent over all leave-one-out subsets (>= 3 points)."""
    if len(xs) < 3:
        raise ValueError("need at least three points for leave-one-out")
    exps = []
    for drop in range(len(xs)):
        sub_x = [x for i, x in enumerate(xs) if i != drop]
        sub_y = [y for i, y in enumerate(ys) if i != drop]
        exps.append(fit_power_law(sub_x, sub_y).exponent)
    return min(exps), max(exps)


def crossover(
    xs: Sequence[float],
    series_a: Sequence[float],
    series_b: Sequence[float],
) -> float | None:
    """Smallest x where series_a drops to/below series_b (interpolated).

    Both series are sampled at the common, increasing ``xs``.  Returns
    ``None`` if a stays above b over the whole range (or starts at/below
    b, in which case 0-index x is returned as the trivial crossover).
    """
    if not (len(xs) == len(series_a) == len(series_b)):
        raise ValueError("series must share the x grid")
    if list(xs) != sorted(xs):
        raise ValueError("xs must be increasing")
    diffs = [a - b for a, b in zip(series_a, series_b)]
    if diffs[0] <= 0:
        return float(xs[0])
    for i in range(1, len(xs)):
        if diffs[i] <= 0:
            x0, x1 = xs[i - 1], xs[i]
            d0, d1 = diffs[i - 1], diffs[i]
            if d0 == d1:
                return float(x1)
            t = d0 / (d0 - d1)
            return float(x0 + t * (x1 - x0))
    return None


def extrapolated_crossover(
    fit_a: PowerLawFit, fit_b: PowerLawFit
) -> float | None:
    """The x where two power laws intersect (None if parallel).

    Used to *predict* crossovers that lie beyond the measured sweep, e.g.
    where Theorem 1.3's sqrt-polylog curve would overtake the linear
    [BEG18] reference.
    """
    if abs(fit_a.exponent - fit_b.exponent) < 1e-9:
        return None
    # prefactor_a * x^ea = prefactor_b * x^eb
    log_x = math.log(fit_b.prefactor / fit_a.prefactor) / (
        fit_a.exponent - fit_b.exponent
    )
    return math.exp(log_x)
