"""Linial's lower-bound machinery: neighborhood graphs of the ring.

The paper's opening reference ([Lin87]) proves that O(1)-coloring a ring
takes Omega(log* n) rounds.  The proof object is the *neighborhood graph*
``N_t(m)``: vertices are the possible distance-``t`` views of a ring node
with ids from ``[m]`` (for ``t = 1``: ordered triples of distinct ids),
with an edge between two views that can occur at *adjacent* ring nodes
(they overlap shifted by one).  A ``t``-round deterministic algorithm is
exactly a function from views to colors that is proper on ``N_t(m)`` —
so the minimum colors of any ``t``-round algorithm **equals**
``chi(N_t(m))``, and Linial's theorem is ``chi(N_t(m)) >= log^(2t) m``.

We build ``N_0`` and ``N_1`` explicitly, bound their chromatic numbers
(exact by backtracking at small ``m``, greedy/clique bounds beyond), and
let experiment E15 tabulate the resulting *unconditional* lower bounds on
0- and 1-round ring coloring — the "why log* n is needed" side of every
``+O(log* n)`` in the paper.
"""

from __future__ import annotations

import itertools

import networkx as nx


def neighborhood_graph_n0(m: int) -> nx.Graph:
    """``N_0(m)``: views are bare ids; any two distinct ids may be adjacent.

    ``chi(N_0(m)) = m`` — with zero communication every node needs its own
    color, i.e. a 0-round algorithm needs the full id space as palette.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    return nx.complete_graph(m)


def neighborhood_graph_n1(m: int) -> nx.Graph:
    """``N_1(m)``: views are ordered triples of distinct ids ``(a, b, c)``
    (left neighbor, self, right neighbor); ``(a,b,c) ~ (b,c,d)`` whenever
    ``a != c`` and ``b != d`` — two views that can sit on adjacent ring
    nodes.  Nodes are labeled by dense integers; the triple is stored as a
    node attribute ``view``.
    """
    if m < 3:
        raise ValueError("need m >= 3 ids for distinct triples")
    triples = [
        t for t in itertools.permutations(range(m), 3)
    ]
    index = {t: i for i, t in enumerate(triples)}
    g = nx.Graph()
    for t, i in index.items():
        g.add_node(i, view=t)
    for a, b, c in triples:
        for d in range(m):
            if d in (b, c):
                continue
            other = (b, c, d)
            if other in index:
                g.add_edge(index[(a, b, c)], index[other])
    return g


def greedy_chromatic_upper(graph: nx.Graph) -> int:
    """Greedy (largest-first) coloring — an upper bound on chi."""
    coloring = nx.coloring.greedy_color(graph, strategy="largest_first")
    return 1 + max(coloring.values(), default=-1)


def clique_lower_bound(graph: nx.Graph, limit: int = 6) -> int:
    """A clique-number lower bound on chi (search capped at ``limit``)."""
    best = 1 if graph.number_of_nodes() else 0
    nodes = sorted(graph.nodes)
    adj = {v: set(graph.neighbors(v)) for v in nodes}

    def grow(clique: list[int], candidates: list[int]) -> None:
        nonlocal best
        best = max(best, len(clique))
        if best >= limit or len(clique) + len(candidates) <= best:
            return
        for i, v in enumerate(candidates):
            grow(clique + [v], [u for u in candidates[i + 1 :] if u in adj[v]])

    grow([], nodes)
    return best


def is_k_colorable(graph: nx.Graph, k: int, node_budget: int = 2000) -> bool | None:
    """Exact ``k``-colorability by backtracking; ``None`` = too big to try.

    Orders nodes by degree (descending) and prunes on saturated palettes —
    plenty for the ``N_1(m)`` sizes E15 needs (m <= 8: <= 336 nodes).
    """
    if graph.number_of_nodes() > node_budget:
        return None
    nodes = sorted(graph.nodes, key=lambda v: -graph.degree(v))
    color: dict[int, int] = {}

    def backtrack(idx: int) -> bool:
        if idx == len(nodes):
            return True
        v = nodes[idx]
        used = {color[u] for u in graph.neighbors(v) if u in color}
        for c in range(k):
            if c in used:
                continue
            color[v] = c
            if backtrack(idx + 1):
                return True
            del color[v]
            if c not in used and c == len(
                {color[u] for u in nodes[:idx]}
            ):
                break  # symmetry: first unused color failing => all fail
        return False

    return backtrack(0)


def one_round_color_lower_bound(m: int) -> int:
    """Smallest k such that ``N_1(m)`` is k-colorable = the exact palette
    any 1-round deterministic ring algorithm needs for id space [m]
    (exhaustive; use small m)."""
    g = neighborhood_graph_n1(m)
    k = clique_lower_bound(g)
    while True:
        ok = is_k_colorable(g, k)
        if ok is None:
            return k  # lower bound only
        if ok:
            return k
        k += 1
