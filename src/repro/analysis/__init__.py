"""Bound formulas and result formatting."""

from .bounds import (
    DEFAULT_SCALE,
    ParamScale,
    beg18_arbdefective_rounds,
    fhk_congest_rounds,
    fhk_local_rounds,
    gk21_rounds,
    is_prime,
    kappa_theorem_1_1,
    kuhn09_defective_colors,
    linial_colors,
    log_star,
    smallest_prime_above,
    tau_paper,
    tau_prime_paper,
    theorem_1_1_message_bits,
    theorem_1_3_rounds,
    theorem_1_4_rounds,
)
from .compare import ComparisonRow, compare_algorithms, render_comparison
from .lowerbound import (
    neighborhood_graph_n0,
    neighborhood_graph_n1,
    one_round_color_lower_bound,
)
from .regimes import RegimeCell, gap_interval, map_grid, winner
from .sweeps import SweepPoint, SweepResult, sweep
from .shape import (
    PowerLawFit,
    crossover,
    exponent_spread,
    extrapolated_crossover,
    fit_power_law,
)
from .tables import ascii_series, fit_exponent, format_table

__all__ = [
    "DEFAULT_SCALE",
    "ParamScale",
    "PowerLawFit",
    "ComparisonRow",
    "RegimeCell",
    "SweepPoint",
    "SweepResult",
    "ascii_series",
    "beg18_arbdefective_rounds",
    "compare_algorithms",
    "crossover",
    "exponent_spread",
    "extrapolated_crossover",
    "fit_power_law",
    "gap_interval",
    "map_grid",
    "neighborhood_graph_n0",
    "neighborhood_graph_n1",
    "one_round_color_lower_bound",
    "render_comparison",
    "sweep",
    "winner",
    "fhk_congest_rounds",
    "fhk_local_rounds",
    "fit_exponent",
    "format_table",
    "gk21_rounds",
    "is_prime",
    "kappa_theorem_1_1",
    "kuhn09_defective_colors",
    "linial_colors",
    "log_star",
    "smallest_prime_above",
    "tau_paper",
    "tau_prime_paper",
    "theorem_1_1_message_bits",
    "theorem_1_3_rounds",
    "theorem_1_4_rounds",
]
