"""Reusable parameter sweeps with seed replication.

The experiment modules share one pattern: sweep a parameter (Delta, slack,
r, ...), run a pipeline at each point over one or more seeds, collect a
metric, then fit/compare shapes.  :func:`sweep` packages that pattern for
downstream experiment writers, with per-point aggregation (mean/min/max)
and failure capture (a point that raises records the error instead of
killing the sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from .shape import PowerLawFit, fit_power_law


@dataclass
class SweepPoint:
    """One sweep coordinate with its per-seed samples."""

    x: float
    samples: list[float] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    @property
    def mean(self) -> float | None:
        return sum(self.samples) / len(self.samples) if self.samples else None

    @property
    def lo(self) -> float | None:
        return min(self.samples) if self.samples else None

    @property
    def hi(self) -> float | None:
        return max(self.samples) if self.samples else None

    @property
    def ok(self) -> bool:
        return bool(self.samples) and not self.errors


@dataclass
class SweepResult:
    """All points of one sweep, in x order."""

    points: list[SweepPoint]

    def xs(self) -> list[float]:
        return [p.x for p in self.points]

    def means(self) -> list[float]:
        return [p.mean for p in self.points if p.mean is not None]

    def complete(self) -> bool:
        """Every point produced at least one sample and no errors."""
        return all(p.ok for p in self.points)

    def fit(self) -> PowerLawFit:
        """Power-law fit of mean metric vs x (points with samples only)."""
        xs = [p.x for p in self.points if p.mean is not None]
        ys = [p.mean for p in self.points if p.mean is not None]
        return fit_power_law(xs, ys)


def sweep(
    xs: Sequence[float],
    runner: Callable[[float, int], float],
    seeds: Sequence[int] = (0,),
) -> SweepResult:
    """Evaluate ``runner(x, seed)`` over the grid; collect metric samples.

    ``runner`` returns the metric for one (point, seed); exceptions are
    captured per point as strings (the sweep always completes).
    """
    points: list[SweepPoint] = []
    for x in xs:
        point = SweepPoint(x=float(x))
        for seed in seeds:
            try:
                point.samples.append(float(runner(x, seed)))
            except Exception as exc:  # noqa: BLE001 - captured by design
                point.errors.append(f"{type(exc).__name__}: {exc}")
        points.append(point)
    return SweepResult(points)


def sweep_result_from_cells(
    records: Sequence[dict],
    x_param: str = "n",
    metric: str = "rounds",
) -> SweepResult:
    """Adapt :mod:`repro.experiments.sweep` cell records into a
    :class:`SweepResult` for shape fitting.

    ``x_param`` names a key of each record's ``family_params`` (the sweep
    axis, typically ``n``); ``metric`` names either a top-level numeric
    field of the record (``colors``, ``wall_s``, ...) or a key of its
    ``metrics`` summary (``rounds``, ``total_bits``, ...).  Records at the
    same x become samples of one point (seed replication); records missing
    the metric contribute an error entry instead of a sample.
    """
    by_x: dict[float, SweepPoint] = {}
    for record in records:
        x = float(record["family_params"][x_param])
        point = by_x.setdefault(x, SweepPoint(x=x))
        value = record.get(metric)
        if value is None and record.get("metrics"):
            value = record["metrics"].get(metric)
        if value is None:
            point.errors.append(f"metric {metric!r} missing for x={x}")
        else:
            point.samples.append(float(value))
    return SweepResult([by_x[x] for x in sorted(by_x)])
