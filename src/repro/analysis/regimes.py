"""The paper's Delta/n regime map as reusable functions (Section 1.1).

The paper positions Theorem 1.4 between two prior algorithms:

* **[FHK16/BEG18/MT20]** — ``O(sqrt(Delta log Delta) + log* n)`` rounds,
  but with Theta(Delta log Delta)-bit messages, so in CONGEST it pays a
  ``ceil(Delta log Delta / log n)`` slowdown: efficient only when
  ``Delta = O(log n)``.
* **[GK21]** — ``O(log^2 Delta * log n)`` rounds in CONGEST: within
  ``sqrt(Delta) polylog`` only when ``Delta = Omega(log^2 n)``.
* **Theorem 1.4** — ``sqrt(Delta) polylog Delta + O(log* n)``: fills the
  gap ``Delta in [omega(log n), o(log^2 n)]``.

:func:`winner` evaluates the three reference formulas and names the
fastest; :func:`gap_interval` returns the paper's gap for a given ``n``;
E11 renders the resulting map, and tests pin its qualitative shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .bounds import fhk_congest_rounds, gk21_rounds


def thm14_rounds_leading(delta: int) -> float:
    """The leading term of Theorem 1.4's bound (the log* n addend is
    common to all three and dropped for comparisons)."""
    d = max(2, delta)
    return math.sqrt(d) * math.log2(d) ** 2


@dataclass(frozen=True)
class RegimeCell:
    delta: int
    n: int
    fhk: float
    gk21: float
    thm14: float

    @property
    def winner(self) -> str:
        best = min(self.fhk, self.gk21, self.thm14)
        if best == self.fhk:
            return "FHK"
        if best == self.gk21:
            return "GK21"
        return "Thm1.4"


def cell(delta: int, n: int) -> RegimeCell:
    """Evaluate the three reference formulas at one (Delta, n) point."""
    if delta < 1 or n < 2:
        raise ValueError("need delta >= 1 and n >= 2")
    return RegimeCell(
        delta=delta,
        n=n,
        fhk=fhk_congest_rounds(delta, n),
        gk21=gk21_rounds(delta, n),
        thm14=thm14_rounds_leading(delta),
    )


def winner(delta: int, n: int) -> str:
    """Which algorithm's formula wins at (Delta, n)."""
    return cell(delta, n).winner


def gap_interval(n: int) -> tuple[float, float]:
    """The paper's gap ``(log n, log^2 n)`` for a given ``n``."""
    if n < 2:
        raise ValueError("need n >= 2")
    logn = math.log2(n)
    return logn, logn * logn


def map_grid(
    deltas: list[int], ns: list[int]
) -> dict[tuple[int, int], RegimeCell]:
    """The full map over a grid; E11 renders this."""
    return {(d, n): cell(d, n) for d in deltas for n in ns}


def thm14_wins_somewhere_in_gap(n: int, samples: int = 8) -> bool:
    """Does Theorem 1.4 win at some Delta inside the paper's gap for n?"""
    lo, hi = gap_interval(n)
    if hi <= lo + 1:
        return False
    for i in range(samples):
        delta = int(lo + (hi - lo) * (i + 0.5) / samples)
        if delta >= 2 and winner(delta, n) == "Thm1.4":
            return True
    return False
