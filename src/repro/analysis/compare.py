"""Side-by-side algorithm comparison on one graph.

Runs every registered (Delta+1)-capable algorithm (or a chosen subset) on
the same topology and collects a uniform scorecard: colors, rounds, total
bits, max message size, CONGEST compliance, validity.  Powers the
``repro-cli compare`` subcommand and ``examples/algorithm_shootout.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..core.instance import degree_plus_one_instance
from ..core.validate import validate_ldc, validate_proper_coloring
from ..sim.metrics import congest_bandwidth
from .tables import format_table


@dataclass(frozen=True)
class ComparisonRow:
    """One algorithm's scorecard on the shared graph."""

    algorithm: str
    reference: str
    colors: int
    rounds: int
    total_bits: int
    max_message_bits: int
    congest_ok: bool
    valid: bool


def compare_algorithms(
    graph: nx.Graph, names: list[str] | None = None
) -> list[ComparisonRow]:
    """Run the selected registry algorithms on ``graph``; sorted by rounds."""
    from ..algorithms.registry import algorithm_names, get

    names = names or algorithm_names()
    n = graph.number_of_nodes()
    inst = degree_plus_one_instance(graph)
    rows: list[ComparisonRow] = []
    for name in names:
        info = get(name)
        res, metrics = info.runner(graph)
        if info.palette == "Delta+1":
            valid = bool(validate_ldc(inst, res))
        else:
            valid = bool(validate_proper_coloring(graph, res))
        rows.append(
            ComparisonRow(
                algorithm=name,
                reference=info.reference,
                colors=res.num_colors(),
                rounds=metrics.rounds,
                total_bits=metrics.total_bits,
                max_message_bits=metrics.max_message_bits,
                congest_ok=metrics.max_message_bits <= congest_bandwidth(n),
                valid=valid,
            )
        )
    rows.sort(key=lambda r: (r.rounds, r.algorithm))
    return rows


def render_comparison(graph: nx.Graph, rows: list[ComparisonRow]) -> str:
    """Fixed-width scorecard table."""
    delta = max((d for _, d in graph.degree), default=0)
    return format_table(
        ["algorithm", "reference", "colors", "rounds", "total bits", "max msg", "CONGEST", "valid"],
        [
            [
                r.algorithm,
                r.reference,
                r.colors,
                r.rounds,
                r.total_bits,
                r.max_message_bits,
                r.congest_ok,
                r.valid,
            ]
            for r in rows
        ],
        title=(
            f"(Delta+1)-coloring scorecard: n={graph.number_of_nodes()}, "
            f"Delta={delta}, budget={congest_bandwidth(graph.number_of_nodes())} bits"
        ),
    )
