"""Serving-side observability: latency and occupancy aggregation.

The serving daemon (:mod:`repro.serve`) turns the reproduction into a
live system, and live systems are measured in different units than
algorithm runs: request latency quantiles (p50/p99), sustained
requests/sec, queue depth, and batch occupancy.  This module provides
the two small aggregators those numbers come from —
:class:`LatencyTracker` for per-request wall-clock samples and
:class:`OccupancyTracker` for per-round queue/batch fill levels — plus
the :func:`quantile` primitive both the trackers and
``benchmarks/bench_serve.py`` share, so every p50/p99 the repo reports
is computed the same way (linear interpolation on the sorted sample
set, the numpy ``linear`` convention).
"""

from __future__ import annotations

import math
from typing import Any, Sequence


def quantile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile of ``samples`` by linear interpolation.

    ``q`` is a fraction in ``[0, 1]`` (``0.5`` = median, ``0.99`` = p99).
    Matches ``numpy.quantile``'s default ``linear`` method without
    requiring the samples as an array; raises on an empty sample set —
    a latency report over zero requests is a caller bug, not a zero.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
    if not samples:
        raise ValueError("quantile of an empty sample set")
    ordered = sorted(samples)
    pos = q * (len(ordered) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return float(ordered[lo])
    frac = pos - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


class LatencyTracker:
    """Accumulates per-request latency samples (seconds) and summarizes.

    One tracker per latency dimension — the serving scheduler keeps
    three (queue wait, service time, total) — with :meth:`summary`
    rendering the standard serving quantiles in milliseconds.  Samples
    are kept raw (one float per request); at serving-benchmark scales
    (thousands of requests) this is a few hundred kilobytes, and raw
    retention keeps the quantiles exact instead of sketched.
    """

    def __init__(self) -> None:
        self.samples: list[float] = []

    def add(self, seconds: float) -> None:
        """Record one request's latency in seconds."""
        self.samples.append(float(seconds))

    @property
    def count(self) -> int:
        """Number of samples recorded so far."""
        return len(self.samples)

    def summary(self) -> dict[str, Any]:
        """Quantile summary in milliseconds (``{"count": 0}`` when empty)."""
        if not self.samples:
            return {"count": 0}
        ordered = sorted(self.samples)
        ms = 1000.0
        return {
            "count": len(ordered),
            "mean_ms": sum(ordered) / len(ordered) * ms,
            "p50_ms": quantile(ordered, 0.50) * ms,
            "p90_ms": quantile(ordered, 0.90) * ms,
            "p99_ms": quantile(ordered, 0.99) * ms,
            "max_ms": ordered[-1] * ms,
        }


class OutcomeTracker:
    """Terminal-status accounting for an overload-protected server.

    Under admission control a request ends in exactly one of the
    protocol's terminal statuses (``ok``/``halted``/``error``/
    ``rejected``/``timeout``), and the honest overload story is the
    *distribution* over them: a daemon that holds p99 by shedding 40%
    of offered load must say so.  :meth:`record` counts one terminal
    status; :meth:`summary` reports the counts plus ``shed_rate`` and
    ``timeout_rate`` as fractions of everything recorded — the two
    numbers ``benchmarks/bench_serve.py``'s overload cell and the
    ``stats`` protocol op surface.
    """

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def record(self, status: str) -> None:
        """Count one request's terminal status."""
        self.counts[status] = self.counts.get(status, 0) + 1

    @property
    def total(self) -> int:
        """All terminal outcomes recorded so far."""
        return sum(self.counts.values())

    def rate(self, status: str) -> float:
        """Fraction of recorded outcomes that landed in ``status``."""
        total = self.total
        return self.counts.get(status, 0) / total if total else 0.0

    def summary(self) -> dict[str, Any]:
        """Status counts plus shed/timeout fractions (``{"total": 0}`` empty)."""
        if not self.total:
            return {"total": 0}
        return {
            "total": self.total,
            "counts": dict(sorted(self.counts.items())),
            "shed_rate": self.rate("rejected"),
            "timeout_rate": self.rate("timeout"),
        }


class OccupancyTracker:
    """Per-round queue-depth and batch-occupancy accounting.

    The serving scheduler calls :meth:`on_round` once per global round
    with the queue depth (admitted-but-waiting requests) and batch
    occupancy (instances resident in the stepper) *after* that round's
    admissions — the two numbers that tell whether the server is
    saturated (deep queue, full batch), idle (both near zero), or
    mis-sized (empty queue but full batch, or vice versa).
    """

    def __init__(self) -> None:
        self.rounds = 0
        self._queue_sum = 0
        self._queue_max = 0
        self._occupancy_sum = 0
        self._occupancy_max = 0

    def on_round(self, queue_depth: int, occupancy: int) -> None:
        """Record one round's queue depth and batch occupancy."""
        self.rounds += 1
        self._queue_sum += queue_depth
        self._queue_max = max(self._queue_max, queue_depth)
        self._occupancy_sum += occupancy
        self._occupancy_max = max(self._occupancy_max, occupancy)

    def summary(self) -> dict[str, Any]:
        """Mean/max queue depth and occupancy over the recorded rounds."""
        if not self.rounds:
            return {"rounds": 0}
        return {
            "rounds": self.rounds,
            "mean_queue_depth": self._queue_sum / self.rounds,
            "max_queue_depth": self._queue_max,
            "mean_occupancy": self._occupancy_sum / self.rounds,
            "max_occupancy": self._occupancy_max,
        }
