"""Lightweight wall-clock phase profiler.

A :class:`Profiler` accumulates elapsed wall time per named phase via a
context manager.  It is the timing half of the observability layer: both
engines wrap their coarse stages (graph/CSR build, the round loop,
validation) in :meth:`Profiler.phase` hooks, and the resulting
``timings`` dict lands in the :class:`~repro.obs.record.RunRecord` so
sweep records can answer *where* the wall-clock went, not just how much
of it there was.

The overhead is two ``perf_counter`` calls and one dict update per phase
entry — negligible next to even a single vectorized round — so the hooks
stay on unconditionally.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class Profiler:
    """Accumulates wall-clock seconds per named phase.

    Re-entering a phase name accumulates (useful for per-round loops);
    nesting different names is allowed and each level charges its own
    wall time (the outer phase's total includes the inner's).
    """

    __slots__ = ("timings",)

    def __init__(self) -> None:
        self.timings: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager charging the enclosed wall time to ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - t0
            self.timings[name] = self.timings.get(name, 0.0) + elapsed

    def add(self, name: str, seconds: float) -> None:
        """Charge ``seconds`` to ``name`` directly (pre-measured time)."""
        self.timings[name] = self.timings.get(name, 0.0) + float(seconds)

    def total(self) -> float:
        """Sum of all recorded phase times."""
        return sum(self.timings.values())
