"""Observability: one structured run-record schema for both engines.

The paper's claims are measurements — round counts, per-message bits,
defect/color budgets per theorem — so the repo's two execution paths (the
reference simulator and the vectorized CSR engine) must be measurable in
the *same* units.  This package provides that shared vocabulary:

* :class:`RunRecord` / :class:`RoundRow` — per-round accounting rows plus
  headline summary, palette, and wall-clock phase timings;
* :class:`RunRecorder` — the collection hook threaded through
  ``SyncNetwork.run(..., recorder=...)`` and the vectorized fast paths'
  ``recorder=`` parameter;
* :class:`Profiler` — lightweight wall-clock phase timing;
* JSONL emit/load (:func:`append_jsonl`, :func:`write_jsonl`,
  :func:`read_jsonl`);
* :func:`compare_round_accounting` — the cross-engine equivalence check
  (reference vs vectorized on the same cell must produce identical
  per-round message counts and bit totals);
* :class:`LatencyTracker` / :class:`OccupancyTracker` /
  :class:`OutcomeTracker` / :func:`quantile`
  — the serving-side aggregators (:mod:`repro.serve` and
  ``benchmarks/bench_serve.py`` report p50/p99 latency, RPS, and batch
  occupancy through them).

``repro.experiments.sweep`` aggregates these records into its per-cell
cache, and ``repro-cli report`` renders them as per-round tables and
cross-engine comparisons.
"""

from .latency import LatencyTracker, OccupancyTracker, OutcomeTracker, quantile
from .profiler import Profiler
from .record import (
    ENGINE_COMPILED,
    ENGINE_PARTITIONED,
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    OBS_SCHEMA_VERSION,
    RoundRow,
    RunRecord,
    RunRecorder,
    append_jsonl,
    compare_round_accounting,
    read_jsonl,
    write_jsonl,
)

__all__ = [
    "ENGINE_COMPILED",
    "ENGINE_PARTITIONED",
    "ENGINE_REFERENCE",
    "ENGINE_VECTORIZED",
    "LatencyTracker",
    "OBS_SCHEMA_VERSION",
    "OccupancyTracker",
    "OutcomeTracker",
    "Profiler",
    "RoundRow",
    "RunRecord",
    "RunRecorder",
    "append_jsonl",
    "compare_round_accounting",
    "quantile",
    "read_jsonl",
    "write_jsonl",
]
