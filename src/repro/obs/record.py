"""The shared run-record schema and its JSONL serialization.

One :class:`RunRecord` describes one execution — by either engine — in a
single structured shape:

* **per-round rows** (:class:`RoundRow`): message count, total bits, max
  message bits, plus the optional activity columns an engine can supply
  (active nodes, uncolored nodes);
* **headline summary**: the flat :meth:`~repro.sim.metrics.RunMetrics.summary`
  counters (rounds, totals, bandwidth budget/violations);
* **phase timings**: wall-clock seconds per coarse stage from the
  :class:`~repro.obs.profiler.Profiler` hooks;
* **provenance**: engine (``"reference"`` or ``"vectorized"``), algorithm
  name, graph size, palette, and a ``schema`` version.

The round-level columns are the paper's own currency — round counts and
per-message bits per theorem — so "reference and vectorized runs of the
same cell produce identical per-round message counts and bit totals" is a
checkable equivalence (:func:`compare_round_accounting`), enforced by
``tests/test_obs.py`` and surfaced by ``repro-cli report``.

Records serialize as one JSON object per line (JSONL): append-friendly,
streamable, and diffable.  :class:`RunRecorder` is the collection helper
both engines feed — the reference simulator through
``SyncNetwork.run(..., recorder=...)``, the fast paths through their
``recorder=`` parameter — pairing engine-supplied activity columns with
the per-round accounting that :class:`~repro.sim.metrics.RunMetrics` now
carries natively.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from ..sim.metrics import RunMetrics
from .profiler import Profiler

#: Version of the RunRecord row/field layout.  Bump when rows gain,
#: lose, or reinterpret columns; loaders treat other versions as foreign.
#: v2: rows gained the ``faults`` column family (per-round injected fault
#: counts under a :class:`~repro.faults.FaultPlan`; ``None`` = no plan).
#: v3: rows gained the ``exchange`` column family (per-round ghost-color
#: boundary-exchange accounting from :mod:`repro.sim.partition`;
#: ``None`` = single-process execution).
OBS_SCHEMA_VERSION = 3

#: Engine labels (see :data:`repro.sim.backends.BACKENDS`; the batched
#: backend is an execution strategy and records as ``vectorized``).
ENGINE_REFERENCE = "reference"
ENGINE_VECTORIZED = "vectorized"
ENGINE_COMPILED = "compiled"
ENGINE_PARTITIONED = "partitioned"


@dataclass(frozen=True)
class RoundRow:
    """Accounting of one synchronous round.

    ``active`` (nodes still running at the round's start) and
    ``uncolored`` (nodes without a final color after the round) are
    optional: engines emit them when the algorithm's semantics make them
    well-defined, ``None`` otherwise.  ``faults`` is the injected-fault
    column family — per-round event counts keyed by
    :data:`repro.faults.FAULT_KINDS` when the run carried a
    :class:`~repro.faults.FaultPlan`, ``None`` otherwise; both engines
    must produce it identically (checked by
    :func:`compare_round_accounting`).  ``exchange`` is the
    boundary-exchange column family of partitioned runs
    (:meth:`repro.sim.partition.GraphPartition.exchange_row`: bytes of
    ghost colors pulled per round, ghost-replica count, cut directed
    edges); like the activity columns it is engine-optional and not part
    of the cross-engine accounting comparison.
    """

    round: int
    messages: int
    total_bits: int
    max_bits: int
    active: int | None = None
    uncolored: int | None = None
    faults: dict[str, int] | None = None
    exchange: dict[str, int] | None = None

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-ready dict of this row."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RoundRow":
        """Inverse of :meth:`to_dict` (ignores unknown keys)."""
        faults = data.get("faults")
        exchange = data.get("exchange")
        return cls(
            round=int(data["round"]),
            messages=int(data["messages"]),
            total_bits=int(data["total_bits"]),
            max_bits=int(data["max_bits"]),
            active=None if data.get("active") is None else int(data["active"]),
            uncolored=(
                None if data.get("uncolored") is None else int(data["uncolored"])
            ),
            faults=(
                None
                if faults is None
                else {str(k): int(v) for k, v in faults.items()}
            ),
            exchange=(
                None
                if exchange is None
                else {str(k): int(v) for k, v in exchange.items()}
            ),
        )


@dataclass
class RunRecord:
    """One run's complete observability record (see module docstring)."""

    engine: str
    algorithm: str
    n: int
    m: int
    summary: dict[str, Any]
    rows: list[RoundRow] = field(default_factory=list)
    palette: int | None = None
    timings: dict[str, float] = field(default_factory=dict)
    schema: int = OBS_SCHEMA_VERSION

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_metrics(
        cls,
        metrics: RunMetrics,
        *,
        engine: str,
        algorithm: str,
        n: int,
        m: int,
        active_per_round: Sequence[int] | None = None,
        uncolored_per_round: Sequence[int] | None = None,
        faults_per_round: Sequence[dict[str, int] | None] | None = None,
        exchange_per_round: Sequence[dict[str, int] | None] | None = None,
        palette: int | None = None,
        timings: dict[str, float] | None = None,
    ) -> "RunRecord":
        """Build a record from a run's :class:`RunMetrics`.

        Rows come from the metrics' native per-round lists; the optional
        activity sequences (including the per-round fault-count dicts)
        are merged in positionally (shorter sequences leave trailing rows'
        columns ``None``).  Metrics assembled by hand (e.g. parallel
        merges, where per-round data is undefined) yield a record with
        summary-only accounting and no rows.
        """
        rows: list[RoundRow] = []
        if metrics.per_round_complete:
            active = list(active_per_round or [])
            uncolored = list(uncolored_per_round or [])
            faults = list(faults_per_round or [])
            exchange = list(exchange_per_round or [])
            for r in range(metrics.rounds):
                rows.append(
                    RoundRow(
                        round=r,
                        messages=metrics.per_round_messages[r],
                        total_bits=metrics.per_round_bits[r],
                        max_bits=metrics.per_round_max_bits[r],
                        active=active[r] if r < len(active) else None,
                        uncolored=uncolored[r] if r < len(uncolored) else None,
                        faults=faults[r] if r < len(faults) else None,
                        exchange=exchange[r] if r < len(exchange) else None,
                    )
                )
        record = cls(
            engine=engine,
            algorithm=algorithm,
            n=int(n),
            m=int(m),
            summary=dict(metrics.summary()),
            rows=rows,
            palette=palette,
            timings=dict(timings or {}),
        )
        record.check_consistent()
        return record

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def check_consistent(self) -> None:
        """Raise ``ValueError`` when rows disagree with the summary.

        The guarded invariant is exactly the class of bug this layer
        exists to catch: per-round accounting silently drifting from the
        headline counters (cf. the historical ``Trace.bits_per_round``
        dropped-round bug).
        """
        if not self.rows:
            return
        problems = []
        if len(self.rows) != self.summary.get("rounds"):
            problems.append(
                f"{len(self.rows)} rows vs rounds={self.summary.get('rounds')}"
            )
        msgs = sum(r.messages for r in self.rows)
        if msgs != self.summary.get("total_messages"):
            problems.append(
                f"row messages {msgs} != total_messages "
                f"{self.summary.get('total_messages')}"
            )
        bits = sum(r.total_bits for r in self.rows)
        if bits != self.summary.get("total_bits"):
            problems.append(
                f"row bits {bits} != total_bits {self.summary.get('total_bits')}"
            )
        max_bits = max((r.max_bits for r in self.rows), default=0)
        if max_bits != self.summary.get("max_message_bits"):
            problems.append(
                f"row max bits {max_bits} != max_message_bits "
                f"{self.summary.get('max_message_bits')}"
            )
        if problems:
            raise ValueError(
                "inconsistent RunRecord: " + "; ".join(problems)
            )

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict (rows flattened) — the JSONL line payload."""
        return {
            "schema": self.schema,
            "engine": self.engine,
            "algorithm": self.algorithm,
            "n": self.n,
            "m": self.m,
            "palette": self.palette,
            "summary": dict(self.summary),
            "timings": dict(self.timings),
            "rows": [r.to_dict() for r in self.rows],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_dict`; raises on foreign schema versions."""
        schema = data.get("schema")
        if schema != OBS_SCHEMA_VERSION:
            raise ValueError(
                f"RunRecord schema {schema!r} != supported {OBS_SCHEMA_VERSION}"
            )
        return cls(
            engine=str(data["engine"]),
            algorithm=str(data["algorithm"]),
            n=int(data["n"]),
            m=int(data["m"]),
            summary=dict(data["summary"]),
            rows=[RoundRow.from_dict(r) for r in data.get("rows", [])],
            palette=data.get("palette"),
            timings={k: float(v) for k, v in (data.get("timings") or {}).items()},
            schema=int(schema),
        )


# ----------------------------------------------------------------------
# JSONL I/O
# ----------------------------------------------------------------------
def append_jsonl(record: RunRecord, path: Path | str) -> None:
    """Append one record as a single JSON line (creates parents/file)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")


def write_jsonl(records: Iterable[RunRecord], path: Path | str) -> None:
    """Atomically write records as JSONL, replacing any existing file.

    The payload stages through a *uniquely named* sibling temp file that
    ``os.replace``\\ s the destination only once every record is
    serialized (:func:`repro.atomic.atomic_write_text`).  A crash
    mid-write — e.g. the crash-stop flush path re-serializing a record
    set — leaves the previous file intact instead of destroying
    already-flushed records with a half-written replacement, and two
    processes replacing the same file concurrently each publish a
    complete payload (last rename wins whole) instead of interleaving
    into one shared ``.tmp``.
    """
    from ..atomic import atomic_write_text

    atomic_write_text(
        path,
        "".join(
            json.dumps(record.to_dict(), sort_keys=True) + "\n"
            for record in records
        ),
    )


def read_jsonl(path: Path | str) -> list[RunRecord]:
    """Load every record of a JSONL file (blank lines skipped).

    A final line that is not valid JSON — the signature of an append
    interrupted mid-line — is skipped with a warning rather than raised,
    so one torn append cannot make every previously flushed record
    unreadable.  Malformed JSON *before* the last line is still an
    error: that is corruption, not a torn tail.
    """
    path = Path(path)
    lines = [
        (i, line.strip())
        for i, line in enumerate(path.read_text().splitlines(), start=1)
        if line.strip()
    ]
    out = []
    for pos, (lineno, line) in enumerate(lines):
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            if pos == len(lines) - 1:
                warnings.warn(
                    f"{path}: skipping partial trailing line {lineno} "
                    f"(interrupted append?): {exc}",
                    stacklevel=2,
                )
                break
            raise ValueError(
                f"{path}: malformed JSONL at line {lineno}: {exc}"
            ) from exc
        out.append(RunRecord.from_dict(payload))
    return out


# ----------------------------------------------------------------------
# the collection helper both engines feed
# ----------------------------------------------------------------------
class RunRecorder:
    """Collects per-round activity during a run and finalizes a record.

    Engines call :meth:`on_round` once per synchronous round — in the same
    order the run's :class:`RunMetrics` observes rounds — then
    :meth:`finalize` pairs the activity columns with the metrics' native
    per-round accounting.  ``SyncNetwork.run`` finalizes automatically;
    vectorized fast paths finalize before returning.  With ``jsonl_path``
    set, every finalized record is appended to that file.
    """

    def __init__(
        self,
        engine: str = ENGINE_REFERENCE,
        algorithm: str = "",
        jsonl_path: Path | str | None = None,
    ) -> None:
        self.engine = engine
        self.algorithm = algorithm
        self.jsonl_path = Path(jsonl_path) if jsonl_path is not None else None
        self.active_per_round: list[int | None] = []
        self.uncolored_per_round: list[int | None] = []
        self.faults_per_round: list[dict[str, int] | None] = []
        self.exchange_per_round: list[dict[str, int] | None] = []
        self.profiler = Profiler()
        self.record: RunRecord | None = None

    def on_round(
        self,
        active: int | None = None,
        uncolored: int | None = None,
        faults: dict[str, int] | None = None,
        exchange: dict[str, int] | None = None,
    ) -> None:
        """Note one round's activity (any column may be unknown).

        ``faults`` is the round's injected-fault counts when the run
        carried a :class:`~repro.faults.FaultPlan` (``None`` otherwise);
        ``exchange`` is the round's ghost-color boundary-exchange
        accounting when the run executed on the partitioned backend
        (``None`` otherwise).
        """
        self.active_per_round.append(active)
        self.uncolored_per_round.append(uncolored)
        self.faults_per_round.append(faults)
        self.exchange_per_round.append(exchange)

    def finalize(
        self,
        metrics: RunMetrics,
        *,
        n: int,
        m: int,
        palette: int | None = None,
        algorithm: str | None = None,
    ) -> RunRecord:
        """Assemble (and optionally emit) the final :class:`RunRecord`."""
        record = RunRecord.from_metrics(
            metrics,
            engine=self.engine,
            algorithm=algorithm or self.algorithm or "?",
            n=n,
            m=m,
            active_per_round=[a for a in self.active_per_round],  # type: ignore[misc]
            uncolored_per_round=[u for u in self.uncolored_per_round],  # type: ignore[misc]
            faults_per_round=list(self.faults_per_round),
            exchange_per_round=list(self.exchange_per_round),
            palette=palette,
            timings=self.profiler.timings,
        )
        self.record = record
        if self.jsonl_path is not None:
            append_jsonl(record, self.jsonl_path)
        return record


# ----------------------------------------------------------------------
# cross-engine equivalence
# ----------------------------------------------------------------------
def compare_round_accounting(a: RunRecord, b: RunRecord) -> dict[str, Any]:
    """Round-level accounting comparison of two records.

    Compares the columns both engines must agree on — per-round message
    counts and bit totals (plus round count and max message bits), and the
    ``faults`` column family, which a fixed
    :class:`~repro.faults.FaultPlan` makes an engine-independent function
    of the plan — and reports the first mismatching round, if any.  A
    fault-column disagreement marks the round mismatched (the engines saw
    *different fault schedules*) and additionally clears ``faults_equal``.
    Activity columns and the partitioned backend's ``exchange`` column
    are engine-optional and deliberately not compared.
    """
    mismatches: list[int] = []
    fault_mismatches: list[int] = []
    for r in range(max(len(a.rows), len(b.rows))):
        ra = a.rows[r] if r < len(a.rows) else None
        rb = b.rows[r] if r < len(b.rows) else None
        if ra is not None and rb is not None and ra.faults != rb.faults:
            fault_mismatches.append(r)
        if (
            ra is None
            or rb is None
            or ra.messages != rb.messages
            or ra.total_bits != rb.total_bits
            or ra.max_bits != rb.max_bits
            or ra.faults != rb.faults
        ):
            mismatches.append(r)
    return {
        "rounds_equal": len(a.rows) == len(b.rows),
        "accounting_equal": not mismatches,
        "first_mismatch": mismatches[0] if mismatches else None,
        "mismatched_rounds": len(mismatches),
        "faults_equal": not fault_mismatches,
        "totals_equal": (
            a.summary.get("total_messages") == b.summary.get("total_messages")
            and a.summary.get("total_bits") == b.summary.get("total_bits")
        ),
    }
