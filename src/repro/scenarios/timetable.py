"""Exam timetabling as a list defective coloring scenario.

Exams sharing students conflict; slots are colors.  Each exam is
restricted to a subset of slots (lecturer availability — *lists*), and a
bounded number of conflicting exams may share a slot when overflow
proctoring can split the students (*defects*).  Heterogeneous again: big
first-year exams get dedicated slots (defect 0) while small seminars
tolerate a clash or two.

The conflict graph is built from a student-enrollment table; the schedule
comes from the Theorem 1.3 transformation; the summary reports per-slot
load and the realized clash budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import networkx as nx

from ..core.colorspace import ColorSpace
from ..core.conditions import ldc_exists_condition
from ..core.instance import ListDefectiveInstance
from ..core.validate import validate_arbdefective
from ..sim.metrics import RunMetrics
from ..algorithms.arblist import solve_list_arbdefective


@dataclass(frozen=True)
class TimetableConfig:
    slots: int = 20
    big_exam_quantile: float = 0.8  # exams above this size get defect 0
    small_exam_defect: int = 1
    extra_slots: int = 2  # list size beyond degree+1
    seed: int = 0


@dataclass
class Timetable:
    slot_of: dict[int, int]
    metrics: RunMetrics
    valid: bool
    max_clashes: int
    per_slot_load: dict[int, int] = field(default_factory=dict)


def conflict_graph(enrollments: dict[int, list[int]]) -> nx.Graph:
    """Exams -> conflict graph: an edge when two exams share a student.

    ``enrollments`` maps student id -> list of exam ids.
    """
    g = nx.Graph()
    exams = {e for exams in enrollments.values() for e in exams}
    g.add_nodes_from(exams)
    for exams_of_student in enrollments.values():
        uniq = sorted(set(exams_of_student))
        for i, a in enumerate(uniq):
            for b in uniq[i + 1 :]:
                g.add_edge(a, b)
    return g


def random_enrollments(
    students: int, exams: int, per_student: int, seed: int
) -> dict[int, list[int]]:
    """Synthetic enrollment table with a popularity-skewed exam mix."""
    rng = random.Random(seed)
    weights = [1.0 / (e + 1) for e in range(exams)]  # zipf-ish popularity
    total = sum(weights)
    probs = [w / total for w in weights]
    out: dict[int, list[int]] = {}
    for s in range(students):
        chosen: set[int] = set()
        while len(chosen) < min(per_student, exams):
            r = rng.random()
            acc = 0.0
            for e, p in enumerate(probs):
                acc += p
                if r <= acc:
                    chosen.add(e)
                    break
        out[s] = sorted(chosen)
    return out


def build_instance(
    graph: nx.Graph, config: TimetableConfig
) -> ListDefectiveInstance:
    rng = random.Random(config.seed)
    space = ColorSpace(config.slots)
    degrees = sorted(d for _, d in graph.degree)
    if not degrees:
        cutoff = 0
    else:
        cutoff = degrees[min(len(degrees) - 1, int(config.big_exam_quantile * len(degrees)))]
    lists: dict[int, tuple[int, ...]] = {}
    defects: dict[int, dict[int, int]] = {}
    for exam in graph.nodes:
        deg = graph.degree(exam)
        d = 0 if deg >= cutoff else config.small_exam_defect
        # list must carry the Eq. (1) budget: sum (d+1) > deg
        need = deg // (d + 1) + 1 + config.extra_slots
        if need > config.slots:
            raise ValueError(
                f"exam {exam}: conflict degree {deg} needs {need} slots "
                f"but only {config.slots} exist"
            )
        chosen = sorted(rng.sample(range(config.slots), need))
        lists[exam] = tuple(chosen)
        defects[exam] = {s: d for s in chosen}
    return ListDefectiveInstance(graph, space, lists, defects)


def timetable(
    enrollments: dict[int, list[int]], config: TimetableConfig | None = None
) -> Timetable:
    """Schedule the exams; raises if the slot budget can't satisfy Eq. (1)."""
    config = config or TimetableConfig()
    graph = conflict_graph(enrollments)
    instance = build_instance(graph, config)
    if not ldc_exists_condition(instance):
        raise ValueError("slot budget violates Eq. (1); add slots")
    result, metrics, _report = solve_list_arbdefective(instance)
    check = validate_arbdefective(instance, result)
    load: dict[int, int] = {}
    for _e, s in result.assignment.items():
        load[s] = load.get(s, 0) + 1
    return Timetable(
        slot_of=dict(result.assignment),
        metrics=metrics,
        valid=bool(check),
        max_clashes=check.max_defect_seen,
        per_slot_load=load,
    )
