"""TDMA slot scheduling as a list defective coloring scenario.

Library form of the ``examples/tdma_scheduling.py`` story: radios sharing
a link must not transmit in the same slot; hardware duty cycles restrict
each radio to a subset of the frame (*lists*), and capture-effect decoding
tolerates a bounded number of same-slot interferers on some slots
(*defects*).  The scenario object builds the instance, schedules it with
the Theorem 1.3 transformation, and summarizes the schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import networkx as nx

from ..core.colorspace import ColorSpace
from ..core.conditions import ldc_exists_condition
from ..core.instance import ListDefectiveInstance
from ..core.validate import validate_arbdefective
from ..sim.metrics import RunMetrics
from ..algorithms.arblist import solve_list_arbdefective


@dataclass(frozen=True)
class TDMAConfig:
    """Knobs of the scenario.

    ``capture_every`` — every ``k``-th slot tolerates one interferer
    (``0`` disables capture).  ``extra_slots`` — list size beyond the
    degree+1 minimum.
    """

    frame_slots: int = 24
    extra_slots: int = 1
    capture_every: int = 3
    capture_defect: int = 1
    seed: int = 0


@dataclass
class TDMASchedule:
    """The outcome: per-radio slot, utilization stats, run metrics."""

    slots: dict[int, int]
    metrics: RunMetrics
    valid: bool
    max_interferers: int
    slots_used: int
    busiest_slot: tuple[int, int] = field(default=(0, 0))  # (slot, radios)

    def radios_in_slot(self, slot: int) -> list[int]:
        return sorted(v for v, s in self.slots.items() if s == slot)


def build_instance(
    topology: nx.Graph, config: TDMAConfig
) -> ListDefectiveInstance:
    """Random feasible slot lists per the config; raises if the frame is
    too short for some radio's degree."""
    rng = random.Random(config.seed)
    space = ColorSpace(config.frame_slots)
    lists: dict[int, tuple[int, ...]] = {}
    defects: dict[int, dict[int, int]] = {}
    for v in topology.nodes:
        need = topology.degree(v) + 1 + config.extra_slots
        if need > config.frame_slots:
            raise ValueError(
                f"radio {v}: degree {topology.degree(v)} needs {need} slots "
                f"but the frame has {config.frame_slots}"
            )
        slots = sorted(rng.sample(range(config.frame_slots), need))
        lists[v] = tuple(slots)
        defects[v] = {
            s: (
                config.capture_defect
                if config.capture_every and s % config.capture_every == 0
                else 0
            )
            for s in slots
        }
    return ListDefectiveInstance(topology, space, lists, defects)


def schedule(topology: nx.Graph, config: TDMAConfig | None = None) -> TDMASchedule:
    """Build and solve the scenario; the result is always validated."""
    config = config or TDMAConfig()
    instance = build_instance(topology, config)
    if not ldc_exists_condition(instance):
        raise ValueError("frame too tight: Eq. (1) violated — add slots")
    result, metrics, _report = solve_list_arbdefective(instance)
    check = validate_arbdefective(instance, result)
    usage: dict[int, int] = {}
    for _v, s in result.assignment.items():
        usage[s] = usage.get(s, 0) + 1
    busiest = max(usage.items(), key=lambda kv: (kv[1], -kv[0])) if usage else (0, 0)
    return TDMASchedule(
        slots=dict(result.assignment),
        metrics=metrics,
        valid=bool(check),
        max_interferers=check.max_defect_seen,
        slots_used=len(usage),
        busiest_slot=busiest,
    )
