"""Worked domain scenarios built on the public API (used by examples/)."""

from .frequency import FrequencyConfig, FrequencyPlan, plan
from .tdma import TDMAConfig, TDMASchedule, schedule
from .timetable import (
    Timetable,
    TimetableConfig,
    conflict_graph,
    random_enrollments,
    timetable,
)

__all__ = [
    "FrequencyConfig",
    "FrequencyPlan",
    "TDMAConfig",
    "Timetable",
    "TimetableConfig",
    "TDMASchedule",
    "plan",
    "conflict_graph",
    "random_enrollments",
    "schedule",
    "timetable",
]
