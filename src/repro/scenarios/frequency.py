"""Cellular frequency assignment as a heterogeneous-defect LDC scenario.

Library form of ``examples/frequency_assignment.py``: a macro hub with
beamforming (few wideband channels, each tolerating several co-channel
neighbors) surrounded by small cells needing clean channels.  The regime
where *list defective* coloring is strictly more expressive than either
plain list coloring (can't express the hub's interference budget) or plain
defective coloring (can't express per-transmitter channel licenses).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

from ..core.colorspace import ColorSpace
from ..core.conditions import ConditionAudit
from ..core.instance import ListDefectiveInstance
from ..core.validate import validate_arbdefective, validate_ldc
from ..sim.metrics import RunMetrics
from ..algorithms.arblist import solve_list_arbdefective
from ..algorithms.greedy import solve_ldc_potential


@dataclass(frozen=True)
class FrequencyConfig:
    channels: int = 48
    hub_channels: int = 4
    hub_defect: int = 5
    seed: int = 0


@dataclass
class FrequencyPlan:
    assignment: dict[int, int]
    metrics: RunMetrics
    valid: bool
    hub_channel: int
    hub_co_channel: int
    audit: ConditionAudit


def build_instance(
    topology: nx.Graph, hubs: set[int], config: FrequencyConfig
) -> ListDefectiveInstance:
    """Hubs get few high-defect channels; the fringe gets deg+1 clean ones."""
    rng = random.Random(config.seed)
    space = ColorSpace(config.channels)
    lists: dict[int, tuple[int, ...]] = {}
    defects: dict[int, dict[int, int]] = {}
    for v in topology.nodes:
        if v in hubs:
            budget_needed = topology.degree(v) + 1
            chans_n = max(
                config.hub_channels,
                -(-budget_needed // (config.hub_defect + 1)),
            )
            chans = sorted(rng.sample(range(config.channels), chans_n))
            lists[v] = tuple(chans)
            defects[v] = {c: config.hub_defect for c in chans}
        else:
            need = topology.degree(v) + 1
            if need > config.channels:
                raise ValueError(f"cell {v}: not enough channels")
            chans = sorted(rng.sample(range(config.channels), need))
            lists[v] = tuple(chans)
            defects[v] = {c: 0 for c in chans}
    return ListDefectiveInstance(topology, space, lists, defects)


def plan(
    topology: nx.Graph,
    hubs: set[int],
    config: FrequencyConfig | None = None,
    sequential: bool = False,
) -> FrequencyPlan:
    """Assign frequencies; ``sequential`` uses Lemma A.1's construction
    instead of the distributed Theorem 1.3 pipeline."""
    config = config or FrequencyConfig()
    instance = build_instance(topology, hubs, config)
    audit = ConditionAudit.of(instance)
    if not audit.eq1_ldc_exists:
        raise ValueError("hub budgets too small: Eq. (1) violated")
    if sequential:
        result = solve_ldc_potential(instance)
        metrics = RunMetrics()
        valid = bool(validate_ldc(instance, result))
    else:
        result, metrics, _report = solve_list_arbdefective(instance)
        valid = bool(validate_arbdefective(instance, result))
    hub = min(hubs) if hubs else next(iter(topology.nodes))
    hub_channel = result.assignment[hub]
    co = sum(
        1
        for u in topology.neighbors(hub)
        if result.assignment[u] == hub_channel
    )
    return FrequencyPlan(
        assignment=dict(result.assignment),
        metrics=metrics,
        valid=valid,
        hub_channel=hub_channel,
        hub_co_channel=co,
        audit=audit,
    )
