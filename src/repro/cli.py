"""Command-line interface.

Main subcommands::

    repro-cli color      --family random_regular --n 120 --degree 10
    repro-cli edge-color --family ring --n 40
    repro-cli experiment E09 [--full]
    repro-cli sweep      --algorithms linial,linial_vectorized --cache-dir C
    repro-cli faults     --mode drop --rates 0.0,0.1,0.3
    repro-cli report     --cache-dir C
    repro-cli fuzz       --seed 0 --iterations 50 --corpus tests/corpus
    repro-cli serve      --port 7341 --max-batch 64
    repro-cli backends
    repro-cli families

``color`` runs the Theorem 1.4 pipeline on a generated graph and prints
the run metrics; ``edge-color`` does the same on the line graph;
``experiment`` renders one of the reproduction experiments; ``sweep``
runs a cached grid of (family, n, seed, algorithm) cells; ``faults``
charts validity/rounds/bits degradation under a seeded
:class:`~repro.faults.FaultPlan`, raw vs resilient-wrapped, with both
engines cross-checked per rate (see ``docs/RESILIENCE.md``); ``report``
either writes the full experiment record or — with ``--cache-dir`` /
``--runs`` — renders observability run records as per-round tables plus
the reference-vs-vectorized cross-engine comparisons; ``fuzz`` replays
the pinned failure corpus and then runs the differential
reference-vs-vectorized fuzz loop (see ``docs/FUZZING.md``);
``fuzz --backend compiled`` runs the same loop against the compiled
backend of :mod:`repro.sim.compiled` (fault cases skipped — the backend
declares ``supports_faults=False``); ``serve`` runs the
:mod:`repro.serve` continuous-batching daemon on a local TCP port
(``--smoke`` instead starts it, fires a pinned synthetic burst from
concurrent clients, asserts every coloring validates, and shuts down —
the CI serving check); ``backends`` prints the
:mod:`repro.sim.backends` registry with capabilities/availability and
the cross-module consistency check; ``families`` lists the available
graph generators and their parameters.
"""

from __future__ import annotations

import argparse
import inspect
import sys

from . import graphs
from .algorithms import congest_degree_plus_one
from .core import degree_plus_one_instance, validate_ldc
from .experiments import EXPERIMENTS, get_runner
from .graphs import (
    edge_coloring_from_line,
    edge_degree_plus_one_instance,
    validate_edge_coloring,
)

_FAMILY_FNS = {
    name: fn
    for name, fn in vars(graphs.generators).items()
    if not name.startswith("_")
    and callable(fn)
    and name
    not in ("family", "max_degree", "nx")
    and inspect.isfunction(fn)
}


def _build_graph(args: argparse.Namespace):
    if getattr(args, "graph_file", None):
        from .io import load_graph_edgelist

        return load_graph_edgelist(args.graph_file)
    kwargs = {}
    fn = _FAMILY_FNS.get(args.family)
    if fn is None:
        raise SystemExit(f"unknown family {args.family!r}; try `repro-cli families`")
    params = inspect.signature(fn).parameters
    for key in ("n", "degree", "p", "seed", "dim", "rows", "cols", "k",
                "count", "size", "hub_degree", "fringe_cliques", "clique_size"):
        value = getattr(args, key, None)
        if value is not None and key in params:
            kwargs[key] = value
    missing = [
        p.name
        for p in params.values()
        if p.default is inspect.Parameter.empty and p.name not in kwargs
    ]
    if missing:
        raise SystemExit(
            f"family {args.family!r} needs --{' --'.join(missing)}"
        )
    return fn(**kwargs)


def _cmd_color(args: argparse.Namespace) -> int:
    from .algorithms.registry import get as get_algorithm

    g = _build_graph(args)
    delta = max((d for _, d in g.degree), default=0)
    info = get_algorithm(args.algorithm)
    res, metrics = info.runner(g)
    inst = degree_plus_one_instance(g)
    if info.palette == "Delta+1":
        ok = bool(validate_ldc(inst, res))
    else:
        from .core import validate_proper_coloring

        ok = bool(validate_proper_coloring(g, res))
    print(f"n={g.number_of_nodes()} m={g.number_of_edges()} Delta={delta} "
          f"algorithm={info.name} ({info.reference})")
    print(f"colors={res.num_colors()} rounds={metrics.rounds} "
          f"max_msg_bits={metrics.max_message_bits} valid={ok}")
    if args.show:
        for v in sorted(res.assignment)[: args.show]:
            print(f"  node {v}: color {res.assignment[v]}")
    if args.save_json:
        from .io import save_run

        save_run(inst, res, metrics, args.save_json, info={"cmd": "color"})
        print(f"saved run record to {args.save_json}")
    return 0 if ok else 1


def _cmd_edge_color(args: argparse.Namespace) -> int:
    g = _build_graph(args)
    inst, edge_of = edge_degree_plus_one_instance(g)
    res, metrics, rep = congest_degree_plus_one(inst)
    colors = edge_coloring_from_line(res, edge_of)
    ok = bool(validate_edge_coloring(g, colors))
    print(f"n={g.number_of_nodes()} m={g.number_of_edges()}")
    print(f"edge_colors={len(set(colors.values()))} rounds={metrics.rounds} "
          f"max_msg_bits={metrics.max_message_bits} valid={ok}")
    return 0 if ok else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = get_runner(args.id)(fast=not args.full)
    print(result.render())
    return 0 if result.all_checks_pass else 1


def _cmd_map(_args: argparse.Namespace) -> int:
    from .paper_map import render, verify_all

    broken = verify_all()
    print(render())
    if broken:
        print("\nBROKEN REFERENCES:")
        for b in broken:
            print(" ", b)
        return 1
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import write_markdown_report, write_text_report
    from .experiments import run_all

    if args.cache_dir or args.runs:
        return _cmd_report_obs(args)
    results = run_all(fast=not args.full)
    if args.markdown:
        write_markdown_report(results, args.output)
    else:
        write_text_report(results, args.output)
    ok = all(r.all_checks_pass for r in results)
    print(
        f"wrote {len(results)} experiments to {args.output}; "
        f"all checks {'PASS' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


def _cmd_report_obs(args: argparse.Namespace) -> int:
    from .analysis.report import load_cache_run_records, render_obs_report
    from .obs import read_jsonl

    records = []
    if args.cache_dir:
        records.extend(load_cache_run_records(args.cache_dir))
        from .experiments.sweep import corrupt_cache_files

        quarantined = corrupt_cache_files(args.cache_dir)
        if quarantined:
            print(
                f"{len(quarantined)} corrupt cache file(s) quarantined as "
                f"*.json.corrupt under {args.cache_dir}"
            )
    if args.runs:
        try:
            records.extend((args.runs, r) for r in read_jsonl(args.runs))
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(f"cannot read run records from {args.runs}: {exc}")
    print(render_obs_report(records))
    return 0 if records else 1


def _cmd_selftest(_args: argparse.Namespace) -> int:
    from .selftest import selftest

    failures = selftest()
    if failures:
        print("SELFTEST FAILURES:")
        for f in failures:
            print(" ", f)
        return 1
    print("selftest: all checks passed")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .analysis.compare import compare_algorithms, render_comparison

    g = _build_graph(args)
    names = args.algorithms.split(",") if args.algorithms else None
    rows = compare_algorithms(g, names)
    print(render_comparison(g, rows))
    return 0 if all(r.valid for r in rows) else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time

    from .experiments.sweep import algorithm_names, grid, run_sweep_summarized

    try:
        ns = [int(x) for x in args.n.split(",")]
        seeds = [int(x) for x in args.seeds.split(",")]
    except ValueError as exc:
        raise SystemExit(f"--n/--seeds must be comma-separated integers: {exc}")
    algorithms = args.algorithms.split(",")
    known = set(algorithm_names())
    unknown = [a for a in algorithms if a not in known]
    if unknown:
        raise SystemExit(
            f"unknown algorithm(s) {', '.join(unknown)}; "
            f"options: {', '.join(sorted(known))}"
        )
    extra = {}
    if args.degree is not None:
        extra["degree"] = args.degree
    if args.p is not None:
        extra["p"] = args.p
    try:
        cells = grid(args.family, algorithms, ns, seeds, extra_family_params=extra)
    except KeyError as exc:
        raise SystemExit(exc.args[0])
    t0 = _time.perf_counter()
    summary = run_sweep_summarized(
        cells,
        cache_dir=args.cache_dir,
        workers=args.workers,
        recompute=args.recompute,
    )
    wall = _time.perf_counter() - t0
    header = f"{'algorithm':<20} {'n':>8} {'seed':>5} {'colors':>7} {'rounds':>7} {'wall':>9}  cached"
    print(header)
    print("-" * len(header))
    batched_cells = 0
    for r in summary.results:
        fp = r.data["family_params"]
        rounds = (r.data["metrics"] or {}).get("rounds", "-")
        colors = r.data["colors"] if r.data["colors"] is not None else "-"
        provenance = "yes" if r.cached else "no"
        batched_with = int(r.data.get("batched_with", 1) or 1)
        if batched_with > 1:
            batched_cells += 1
            provenance += f"  batched x{batched_with}"
        if r.failed:
            provenance += f"  FAILED ({r.data['error']['type']})"
        print(
            f"{r.data['algorithm']:<20} {fp.get('n', '-'):>8} "
            f"{fp.get('seed', '-'):>5} {colors:>7} {rounds:>7} "
            f"{r.data['wall_s']*1000:>7.0f}ms  {provenance}"
        )
    if batched_cells:
        print(
            "(batched xN cells share one engine invocation; their wall "
            "column is the whole batch's wall time, ~wall/N per cell)"
        )
    extras = "".join(
        f", {count} {label}"
        for label, count in (
            ("corrupt", summary.corrupt),
            ("stale", summary.stale),
            ("failed", summary.failed),
        )
        if count
    )
    print(
        f"{summary.total} cells ({summary.computed} computed, "
        f"{summary.cached} cached{extras}) in {wall:.2f}s"
    )
    if args.output:
        payload = {
            "family": args.family,
            "cells": [r.data for r in summary.results],
            "computed": summary.computed,
            "cached": summary.cached,
            "wall_s": wall,
        }
        with open(args.output, "w") as fh:
            _json.dump(payload, fh, indent=1, sort_keys=True)
        print(f"saved sweep record to {args.output}")
    bad = [r for r in summary.results if not r.data["valid"]]
    return 1 if bad else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import (
        fuzz_run,
        load_corpus,
        pairs_for_backend,
        run_case,
        run_cases_batched,
    )
    from .sim.backends import BackendError, get_backend

    try:
        spec = get_backend(args.backend)
        registry = pairs_for_backend(args.backend)
    except BackendError as exc:
        raise SystemExit(str(exc))
    known = tuple(registry)
    selected = args.pairs.split(",") if args.pairs else list(known)
    unknown = [p for p in selected if p not in known]
    if unknown:
        raise SystemExit(
            f"unknown engine pair(s) {', '.join(unknown)} for backend "
            f"{spec.name!r}; options: {', '.join(known)}"
        )

    replay_failures = 0
    if args.corpus:
        entries = load_corpus(args.corpus)
        runnable, skipped = [], 0
        for path, case in entries:
            # Pinned cases outside the backend's capabilities (pairs it
            # does not implement, fault cases when supports_faults is
            # off) replay on the default vectorized backend's CI run.
            if case.pair not in registry or (
                case.fault is not None and not spec.supports_faults
            ):
                skipped += 1
                continue
            runnable.append((path, case))
        if args.batch > 1:
            outcomes = run_cases_batched(
                [case for _, case in runnable], pairs=registry
            )
            replayed = [(p, o) for (p, _), o in zip(runnable, outcomes)]
        else:
            replayed = [
                (path, run_case(case, pairs=registry))
                for path, case in runnable
            ]
        for path, outcome in replayed:
            if not outcome.ok:
                replay_failures += 1
                print(f"CORPUS REGRESSION {path}:")
                print("  " + outcome.describe().replace("\n", "\n  "))
        skip_note = (
            f", {skipped} outside backend {spec.name!r} capabilities skipped"
            if skipped
            else ""
        )
        print(
            f"corpus replay: {len(replayed)} pinned case(s), "
            f"{replay_failures} regression(s){skip_note}"
        )

    report = fuzz_run(
        seed=args.seed,
        iterations=args.iterations,
        pair_names=selected,
        corpus_dir=args.failure_dir or None,
        shrink=not args.no_shrink,
        max_failures=args.max_failures,
        batch_size=args.batch,
        backend=args.backend,
    )
    print(report.describe())
    if report.failures:
        print(
            f"new failure(s) pinned under {args.failure_dir}; move the JSON "
            f"into tests/corpus/ alongside the fix to keep it fixed"
        )
    return 1 if (report.failures or replay_failures) else 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import json as _json

    from .core.validate import validate_proper_coloring
    from .experiments.sweep import SweepCell, run_sweep
    from .faults import FaultPlan, resilient_linial
    from .obs import RunRecord, compare_round_accounting

    try:
        ps = [float(x) for x in args.rates.split(",")]
    except ValueError as exc:
        raise SystemExit(f"--rates must be comma-separated floats: {exc}")
    fn = _FAMILY_FNS.get(args.family)
    if fn is None:
        raise SystemExit(f"unknown family {args.family!r}; try `repro-cli families`")
    accepted = set(inspect.signature(fn).parameters)
    fam_params = {"n": args.n, "seed": args.seed}
    if args.degree is not None:
        fam_params["degree"] = args.degree
    fam_params = {k: v for k, v in fam_params.items() if k in accepted}
    graph = fn(**fam_params)

    rate_field = f"p_{args.mode}"
    rows = []
    mismatches = 0
    for p in ps:
        plan_spec = {"seed": args.fault_seed, rate_field: p}
        if args.mode == "crash":
            plan_spec["recovery_rounds"] = 2
        cells = [
            SweepCell.make(args.family, fam_params, algo, {"faults": plan_spec})
            for algo in ("linial_faulty", "linial_faulty_vectorized")
        ]
        ref, vec = run_sweep(cells, cache_dir=args.cache_dir, workers=1)
        if ref.failed or vec.failed:
            raise SystemExit(
                f"faulty cell failed at {rate_field}={p}: "
                f"{(ref if ref.failed else vec).data['error']}"
            )
        cmp = compare_round_accounting(
            RunRecord.from_dict(ref.data["run_record"]),
            RunRecord.from_dict(vec.data["run_record"]),
        )
        agree = (
            cmp["accounting_equal"]
            and cmp["faults_equal"]
            and ref.data["metrics"] == vec.data["metrics"]
        )
        mismatches += 0 if agree else 1
        wres, wm, _pal, info = resilient_linial(
            graph,
            FaultPlan.from_dict(plan_spec),
            retries=args.retries,
            restarts=args.restarts,
        )
        w_ok = bool(validate_proper_coloring(graph, wres))
        rows.append(
            {
                "rate": p,
                "mode": args.mode,
                "raw_valid": ref.data["valid"],
                "engines_agree": agree,
                "raw_rounds": ref.data["metrics"]["rounds"],
                "raw_bits": ref.data["metrics"]["total_bits"],
                "wrapped_valid": w_ok,
                "wrapped_rounds": wm.rounds,
                "wrapped_bits": wm.total_bits,
                "attempts": info["attempts"],
            }
        )
    header = (
        f"{'rate':>6} {'raw valid':>9} {'agree':>5} {'wrap valid':>10} "
        f"{'attempts':>8} {'rounds':>6} {'bits':>9}"
    )
    print(
        f"fault degradation: mode={args.mode} family={args.family} "
        f"{fam_params} retries={args.retries} restarts={args.restarts}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['rate']:>6.2f} {str(row['raw_valid']):>9} "
            f"{str(row['engines_agree']):>5} {str(row['wrapped_valid']):>10} "
            f"{row['attempts']:>8} {row['wrapped_rounds']:>6} "
            f"{row['wrapped_bits']:>9}"
        )
    if mismatches:
        print(f"ENGINE MISMATCH on {mismatches} rate(s)")
    if args.output:
        payload = {
            "family": args.family,
            "family_params": fam_params,
            "mode": args.mode,
            "fault_seed": args.fault_seed,
            "retries": args.retries,
            "restarts": args.restarts,
            "rows": rows,
            "engine_mismatches": mismatches,
        }
        with open(args.output, "w") as fh:
            _json.dump(payload, fh, indent=1, sort_keys=True)
        print(f"saved degradation record to {args.output}")
    return 1 if mismatches else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json as _json

    from .serve import (
        OVERLOAD_STATUSES,
        ColoringServer,
        RetryPolicy,
        ServeConfig,
        fire_traffic,
        synth_requests,
    )
    from .sim.backends import BackendError, require

    config = ServeConfig(
        max_batch=args.max_batch,
        validate=not args.no_validate,
        record_jsonl=args.record_jsonl,
        backend=args.backend,
        max_queue=args.max_queue,
        shed_policy=args.shed_policy,
        drain_timeout_s=args.drain_s,
    )
    try:
        require(config.backend, algorithm="linial", serve=True)
    except BackendError as exc:
        print(exc)
        return 1

    if args.smoke:
        async def smoke() -> int:
            server = ColoringServer(config, host=args.host, port=args.port)
            await server.start()
            print(f"serve smoke: daemon on {args.host}:{server.port}")
            requests = synth_requests(args.seed, args.smoke_requests)
            policy = (
                RetryPolicy(attempts=args.smoke_retries + 1, seed=args.seed)
                if args.smoke_retries > 0
                else None
            )
            report = await fire_traffic(
                args.host,
                server.port,
                requests,
                clients=args.smoke_clients,
                timeout=args.timeout,
                retry_policy=policy,
            )
            stats = server.batcher.stats()
            await server.stop()
            counts = report.status_counts()
            # under admission control every response must land in an
            # overload-legal status; anything else (or a client-side
            # failure, or a lost response) is a smoke failure
            illegal = {
                k: v for k, v in counts.items() if k not in OVERLOAD_STATUSES
            }
            hard_fail = {
                k: v for k, v in counts.items() if k in ("error", "halted")
            }
            invalid = [
                r
                for r in report.responses
                if r.status == "ok" and r.valid is not True
            ]
            print(
                f"serve smoke: {report.requests} requests from "
                f"{args.smoke_clients} clients in {report.wall_seconds:.2f}s "
                f"({report.rps:.0f} rps), statuses={counts}, "
                f"retries={report.retries}, "
                f"client_errors={report.failed_clients}, "
                f"max_occupancy="
                f"{stats['occupancy_stats'].get('max_occupancy', 0)}"
            )
            if args.output:
                with open(args.output, "w") as fh:
                    _json.dump(
                        {
                            "requests": report.requests,
                            "clients": args.smoke_clients,
                            "wall_s": report.wall_seconds,
                            "rps": report.rps,
                            "ok_rps": report.ok_rps,
                            "completed": report.completed,
                            "statuses": counts,
                            "retries": report.retries,
                            "client_errors": report.errors,
                            "stats": stats,
                        },
                        fh,
                        indent=1,
                        sort_keys=True,
                    )
                print(f"saved smoke record to {args.output}")
            if (
                illegal
                or hard_fail
                or invalid
                or report.errors
                or len(report.responses) != len(requests)
            ):
                print(
                    f"SMOKE FAILURE: illegal={illegal} hard_fail={hard_fail} "
                    f"invalid={len(invalid)} "
                    f"client_errors={report.failed_clients} "
                    f"responses={len(report.responses)}/{len(requests)}"
                )
                return 1
            shed = counts.get("rejected", 0) + counts.get("timeout", 0)
            print(
                "serve smoke: all admitted colorings valid "
                f"({shed} shed/timed out under queue bound "
                f"{config.max_queue}), clean shutdown"
            )
            return 0

        return asyncio.run(smoke())

    async def daemon() -> int:
        server = ColoringServer(config, host=args.host, port=args.port)
        await server.start()
        print(
            f"repro serve: listening on {args.host}:{server.port} "
            f"(backend={config.backend}, max_batch={config.max_batch}); "
            f"send {{\"op\": \"shutdown\"}} to stop"
        )
        await server.serve_forever()
        stats = server.batcher.stats()
        await server.stop()
        print(
            f"repro serve: shut down after {stats['served']} served, "
            f"{stats['halted']} halted, {stats['errors']} errors"
        )
        return 0

    try:
        return asyncio.run(daemon())
    except KeyboardInterrupt:
        print("repro serve: interrupted")
        return 0


def _cmd_partition_run(args: argparse.Namespace) -> int:
    import json as _json

    from .obs import (
        ENGINE_PARTITIONED,
        ENGINE_VECTORIZED,
        RunRecorder,
        compare_round_accounting,
    )
    from .sim.engine import CSRGraph, equal_neighbor_counts
    from .sim.partition import PartitionWorkerError, run_partitioned_linial

    if args.smoke:
        # pinned smoke cell: small, fixed-seed, always cross-checked;
        # n=2048 keeps the schedule at >=2 rounds so the per-round ghost
        # exchange (not just the initial snapshot) is exercised
        args.family = "random_regular"
        args.n = args.n or 2048
        args.degree = args.degree or 3
        args.check = True
    g = _build_graph(args)
    csr = CSRGraph.from_networkx(g)
    rec = RunRecorder(engine=ENGINE_PARTITIONED)
    stats_sink: list = []
    try:
        result, metrics, palette = run_partitioned_linial(
            g,
            defect=args.defect,
            recorder=rec,
            shards=args.shards,
            strategy=args.strategy,
            seed=args.partition_seed,
            mp_context=args.mp_context,
            stats_out=stats_sink,
        )
    except PartitionWorkerError as exc:
        print(f"PARTITION FAILURE: {exc}")
        return 1
    stats = stats_sink[0]
    colors = csr.gather(result.assignment)
    same = equal_neighbor_counts(csr, colors)
    max_same = int(same.max()) if same.size else 0
    valid = max_same <= args.defect and (
        int(colors.max()) < palette if csr.n else True
    )
    print(
        f"partition-run: n={csr.n} m={csr.num_directed_edges // 2} "
        f"shards={stats.shards} strategy={stats.strategy} "
        f"rounds={metrics.rounds} palette={palette} "
        f"wall={stats.wall_s:.2f}s"
    )
    print(
        f"  cut_edge_fraction={stats.cut_edge_fraction:.3f} "
        f"ghost_fraction={stats.ghost_fraction:.3f} "
        f"exchange_bytes/round={stats.exchange_bytes_per_round} "
        f"max_peak_rss={stats.max_peak_rss_kb}kB"
    )
    check = None
    if args.check:
        from .sim.vectorized import linial_vectorized

        rec_v = RunRecorder(engine=ENGINE_VECTORIZED)
        res_v, met_v, pal_v = linial_vectorized(
            g, defect=args.defect, recorder=rec_v
        )
        accounting = compare_round_accounting(rec.record, rec_v.record)
        check = {
            "assignment_equal": result.assignment == res_v.assignment,
            "palette_equal": palette == pal_v,
            "metrics_equal": metrics.summary() == met_v.summary(),
            "accounting": accounting,
        }
        check_ok = (
            check["assignment_equal"]
            and check["palette_equal"]
            and check["metrics_equal"]
            and accounting["accounting_equal"]
            and accounting["rounds_equal"]
        )
        print(
            "  vectorized cross-check: "
            + ("bit-identical" if check_ok else f"MISMATCH {check}")
        )
    else:
        check_ok = True
    if args.output:
        payload = {
            "n": csr.n,
            "m": csr.num_directed_edges // 2,
            "defect": args.defect,
            "palette": palette,
            "rounds": metrics.rounds,
            "valid": valid,
            "max_same_color_neighbors": max_same,
            "stats": stats.to_dict(),
            "exchange": rec.record.rows[0].exchange if rec.record.rows else None,
            "check": check,
        }
        with open(args.output, "w") as fh:
            _json.dump(payload, fh, indent=1, sort_keys=True)
        print(f"saved partition record to {args.output}")
    if not valid:
        print(
            f"PARTITION FAILURE: invalid coloring "
            f"(max same-color neighbors {max_same} > defect {args.defect})"
        )
        return 1
    if not check_ok:
        print("PARTITION FAILURE: diverged from the vectorized engine")
        return 1
    if args.check:
        print("partition-run: valid coloring, bit-identical to vectorized")
    return 0


def _cmd_families(_args: argparse.Namespace) -> int:
    for name in sorted(_FAMILY_FNS):
        sig = inspect.signature(_FAMILY_FNS[name])
        print(f"{name}{sig}")
    return 0


def _cmd_backends(_args: argparse.Namespace) -> int:
    from .sim.backends import consistency_report, describe

    print(describe())
    report = consistency_report()
    if report["ok"]:
        print("registry consistency: OK")
        return 0
    print("registry consistency: PROBLEMS")
    for problem in report["problems"]:
        print(f"  - {problem}")
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="List defective colorings — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def graph_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--family", default="random_regular")
        p.add_argument("--graph-file", dest="graph_file", default=None,
                       help="read the topology from an edge-list file instead")
        p.add_argument("--n", type=int, default=None)
        p.add_argument("--degree", type=int, default=None)
        p.add_argument("--p", type=float, default=None)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--dim", type=int, default=None)
        p.add_argument("--rows", type=int, default=None)
        p.add_argument("--cols", type=int, default=None)
        p.add_argument("--hub-degree", dest="hub_degree", type=int, default=None)
        p.add_argument("--fringe-cliques", dest="fringe_cliques", type=int, default=None)
        p.add_argument("--clique-size", dest="clique_size", type=int, default=None)

    p_color = sub.add_parser("color", help="(Delta+1)-color a generated graph")
    graph_args(p_color)
    from .algorithms.registry import algorithm_names

    p_color.add_argument("--algorithm", default="thm14", choices=algorithm_names(),
                         help="which registered coloring algorithm to run")
    p_color.add_argument("--show", type=int, default=0, help="print first N node colors")
    p_color.add_argument("--save-json", dest="save_json", default=None,
                         help="write a run record (instance+coloring+metrics)")
    p_color.set_defaults(func=_cmd_color)

    p_cmp = sub.add_parser("compare", help="run every algorithm on one graph")
    graph_args(p_cmp)
    p_cmp.add_argument("--algorithms", default=None,
                       help="comma-separated registry names (default: all)")
    p_cmp.set_defaults(func=_cmd_compare)

    p_edge = sub.add_parser("edge-color", help="edge-color a generated graph")
    graph_args(p_edge)
    p_edge.set_defaults(func=_cmd_edge_color)

    p_exp = sub.add_parser("experiment", help="run a reproduction experiment")
    p_exp.add_argument("id", choices=sorted(EXPERIMENTS))
    p_exp.add_argument("--full", action="store_true")
    p_exp.set_defaults(func=_cmd_experiment)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a cached, parallel algorithm sweep over a graph-family grid",
    )
    p_sweep.add_argument("--family", default="random_regular")
    p_sweep.add_argument("--n", default="1000",
                         help="comma-separated node counts")
    p_sweep.add_argument("--degree", type=int, default=None)
    p_sweep.add_argument("--p", type=float, default=None)
    p_sweep.add_argument("--seeds", default="0",
                         help="comma-separated generator seeds")
    from .experiments.sweep import algorithm_names as sweep_algorithm_names

    p_sweep.add_argument(
        "--algorithms", default="linial_vectorized",
        help="comma-separated names; options: "
             + ",".join(sweep_algorithm_names()))
    p_sweep.add_argument("--cache-dir", dest="cache_dir", default=".sweep_cache",
                         help="per-cell JSON result cache (reruns skip hits)")
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: one per cpu)")
    p_sweep.add_argument("--recompute", action="store_true",
                         help="ignore and overwrite cached cells")
    p_sweep.add_argument("--output", default=None,
                         help="write the combined sweep record as JSON")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzz: reference vs vectorized engine equivalence",
    )
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="base seed; trials derive from (seed, iteration, pair)")
    p_fuzz.add_argument("--iterations", type=int, default=50,
                        help="iterations (each runs one case per engine pair)")
    p_fuzz.add_argument("--pairs", default=None,
                        help="comma-separated engine pairs (default: all "
                             "the selected backend implements)")
    p_fuzz.add_argument("--backend", default="vectorized",
                        help="which repro.sim.backends backend supplies the "
                             "fast side (vectorized, batched, compiled); "
                             "fault cases are skipped for backends without "
                             "supports_faults")
    p_fuzz.add_argument("--corpus", default="tests/corpus",
                        help="pinned-failure corpus to replay first "
                             "('' skips replay)")
    p_fuzz.add_argument("--failure-dir", dest="failure_dir",
                        default="fuzz_failures",
                        help="where new shrunk failures are serialized")
    p_fuzz.add_argument("--no-shrink", dest="no_shrink", action="store_true",
                        help="skip minimizing failures (faster triage runs)")
    p_fuzz.add_argument("--max-failures", dest="max_failures", type=int,
                        default=5, help="stop after this many failures")
    p_fuzz.add_argument("--batch", type=int, default=0,
                        help="batch size for the vectorized side (corpus "
                             "replay + fuzz trials run through one "
                             "block-diagonal execution per chunk; 0/1 = "
                             "per-case loop)")
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_flt = sub.add_parser(
        "faults",
        help="fault-injection degradation curves: raw vs wrapped Linial "
             "under a seeded adversary, cross-checked across both engines",
    )
    p_flt.add_argument("--family", default="random_regular")
    p_flt.add_argument("--n", type=int, default=150)
    p_flt.add_argument("--degree", type=int, default=4)
    p_flt.add_argument("--seed", type=int, default=1,
                       help="graph generator seed")
    p_flt.add_argument("--mode", default="drop",
                       choices=["drop", "corrupt", "delay", "duplicate", "crash"],
                       help="which fault mode's rate to sweep")
    p_flt.add_argument("--rates", default="0.0,0.05,0.1,0.2,0.3",
                       help="comma-separated fault rates")
    p_flt.add_argument("--fault-seed", dest="fault_seed", type=int, default=21,
                       help="FaultPlan seed (one adversary, swept rate)")
    p_flt.add_argument("--retries", type=int, default=2,
                       help="retransmit budget of the resilient wrapper")
    p_flt.add_argument("--restarts", type=int, default=2,
                       help="restart budget of the resilient wrapper")
    p_flt.add_argument("--cache-dir", dest="cache_dir", default=None,
                       help="optional sweep cache for the engine cells")
    p_flt.add_argument("--output", default=None,
                       help="write the degradation record as JSON")
    p_flt.set_defaults(func=_cmd_faults)

    p_srv = sub.add_parser(
        "serve",
        help="run the continuous-batching coloring daemon "
             "(or --smoke for a self-contained serving check)",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=0,
                       help="TCP port (0 picks a free one, printed at start)")
    p_srv.add_argument("--max-batch", dest="max_batch", type=int, default=64,
                       help="max instances packed into one round")
    p_srv.add_argument("--max-queue", dest="max_queue", type=int, default=None,
                       help="admission-queue bound; beyond it requests are "
                            "shed as status=rejected with a retry_after_ms "
                            "hint (default: unbounded)")
    from .serve import SHED_POLICIES

    p_srv.add_argument("--shed-policy", dest="shed_policy",
                       choices=list(SHED_POLICIES), default="newest",
                       help="which request a full queue sheds: the arriving "
                            "one (newest) or the queue head (oldest)")
    p_srv.add_argument("--drain-s", dest="drain_s", type=float, default=5.0,
                       help="graceful-drain bound at shutdown; still-pending "
                            "work fails with a structured error after it")
    p_srv.add_argument("--timeout", type=float, default=None,
                       help="smoke-client per-op wall-clock timeout (s); a "
                            "hung daemon fails the smoke instead of "
                            "blocking it forever")
    p_srv.add_argument("--smoke-retries", dest="smoke_retries", type=int,
                       default=0,
                       help="retry budget for shed smoke requests "
                            "(seeded-jitter exponential backoff)")
    p_srv.add_argument("--backend", default="batched",
                       help="serve-capable repro.sim.backends backend")
    p_srv.add_argument("--no-validate", dest="no_validate",
                       action="store_true",
                       help="skip re-validating served colorings")
    p_srv.add_argument("--record-jsonl", dest="record_jsonl", default=None,
                       help="append one RunRecord per request to this JSONL")
    p_srv.add_argument("--smoke", action="store_true",
                       help="start the daemon, fire a pinned synthetic "
                            "burst, assert valid colorings, shut down")
    p_srv.add_argument("--seed", type=int, default=0,
                       help="smoke-burst request-set seed")
    p_srv.add_argument("--smoke-requests", dest="smoke_requests", type=int,
                       default=200, help="smoke-burst request count")
    p_srv.add_argument("--smoke-clients", dest="smoke_clients", type=int,
                       default=50, help="smoke-burst concurrent connections")
    p_srv.add_argument("--output", default=None,
                       help="write the smoke record as JSON")
    p_srv.set_defaults(func=_cmd_serve)

    p_par = sub.add_parser(
        "partition-run",
        help="run Linial shard-parallel over an edge-cut partition with "
             "ghost exchange (or --smoke for an equivalence-checked cell)",
    )
    graph_args(p_par)
    from .sim.partition import PARTITION_STRATEGIES

    p_par.add_argument("--shards", type=int, default=2,
                       help="worker-process / shard count")
    p_par.add_argument("--strategy", default="contiguous",
                       choices=list(PARTITION_STRATEGIES),
                       help="node->shard assignment strategy")
    p_par.add_argument("--partition-seed", dest="partition_seed", type=int,
                       default=0, help="hash-strategy partition seed")
    p_par.add_argument("--defect", type=int, default=0,
                       help="per-node defect bound d of the schedule")
    p_par.add_argument("--mp-context", dest="mp_context", default="spawn",
                       choices=["spawn", "fork", "forkserver"],
                       help="multiprocessing start method (spawn gives "
                            "honest per-shard RSS; fork starts faster)")
    p_par.add_argument("--check", action="store_true",
                       help="also run linial_vectorized and require "
                            "bit-identical colors + round accounting")
    p_par.add_argument("--smoke", action="store_true",
                       help="pinned small graph, cross-check forced on")
    p_par.add_argument("--output", default=None,
                       help="write the partition-run record as JSON")
    p_par.set_defaults(func=_cmd_partition_run)

    p_fam = sub.add_parser("families", help="list graph generators")
    p_fam.set_defaults(func=_cmd_families)

    p_bke = sub.add_parser(
        "backends",
        help="list execution backends, their capabilities, and the "
             "registry consistency check",
    )
    p_bke.set_defaults(func=_cmd_backends)

    p_map = sub.add_parser("map", help="paper result -> implementation map")
    p_map.set_defaults(func=_cmd_map)

    p_rep = sub.add_parser(
        "report",
        help="write the experiment record, or render observability "
             "run records (--cache-dir / --runs)",
    )
    p_rep.add_argument("--output", default="experiments_report.txt")
    p_rep.add_argument("--full", action="store_true")
    p_rep.add_argument("--markdown", action="store_true",
                       help="write Markdown instead of plain text")
    p_rep.add_argument("--cache-dir", dest="cache_dir", default=None,
                       help="render per-round tables and cross-engine "
                            "comparisons from a sweep cache directory")
    p_rep.add_argument("--runs", default=None,
                       help="render run records from a RunRecord JSONL file")
    p_rep.set_defaults(func=_cmd_report)

    p_self = sub.add_parser("selftest", help="fast end-to-end smoke pass")
    p_self.set_defaults(func=_cmd_selftest)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
