"""Programmatic map: paper result -> implementation symbol(s).

One authoritative table connecting every numbered statement of the paper
to the code that implements, uses, or measures it.  Tests assert that
every referenced symbol exists and is importable (so refactors cannot
silently orphan a paper result), and ``repro-cli map`` prints the table
for readers navigating the repository.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass


@dataclass(frozen=True)
class PaperResult:
    result: str  # paper-side identifier
    statement: str  # one-line paraphrase
    symbols: tuple[str, ...]  # dotted module:attr paths
    experiment: str  # experiment id(s) measuring it, "" if none


PAPER_MAP: tuple[PaperResult, ...] = (
    PaperResult(
        "Definition 1.1",
        "LDC / OLDC / list arbdefective coloring problems",
        (
            "repro.core.instance:ListDefectiveInstance",
            "repro.core.validate:validate_ldc",
            "repro.core.validate:validate_oldc",
            "repro.core.validate:validate_arbdefective",
        ),
        "",
    ),
    PaperResult(
        "Eq. (1) / Lemma A.1",
        "LDC exists iff sum (d+1) > Delta; potential-descent construction",
        (
            "repro.core.conditions:ldc_exists_condition",
            "repro.algorithms.greedy:solve_ldc_potential",
        ),
        "E01",
    ),
    PaperResult(
        "Eq. (2) / Lemma A.2",
        "list arbdefective exists iff sum (2d+1) > Delta; Euler orientation",
        (
            "repro.core.conditions:arbdefective_exists_condition",
            "repro.algorithms.greedy:solve_arbdefective_euler",
            "repro.graphs.orientation:balanced_orientation",
        ),
        "E01",
    ),
    PaperResult(
        "[Lin87] substrate",
        "O(Delta^2)-coloring in O(log* n) rounds",
        ("repro.algorithms.linial:run_linial", "repro.algorithms.linial:linial_schedule"),
        "E02",
    ),
    PaperResult(
        "[Lin87] lower bound",
        "Omega(log* n) rounds for O(1) ring colors (neighborhood graphs)",
        (
            "repro.analysis.lowerbound:neighborhood_graph_n1",
            "repro.analysis.lowerbound:one_round_color_lower_bound",
        ),
        "E15",
    ),
    PaperResult(
        "[Kuh09] substrate",
        "d-defective O((Delta/d)^2)-coloring in O(log* n) rounds",
        (
            "repro.algorithms.defective:run_defective_coloring",
            "repro.algorithms.linial:defective_schedule",
        ),
        "E03",
    ),
    PaperResult(
        "[BEG18] substrate (substituted)",
        "d-arbdefective O(Delta/(d+1))-coloring",
        ("repro.algorithms.arbdefective:arbdefective_coloring",),
        "E04",
    ),
    PaperResult(
        "[Kuh09] oriented defective (Section 4)",
        "oriented d-defective coloring with O((beta/d)^2) colors",
        ("repro.algorithms.oriented_defective:run_oriented_defective",),
        "",
    ),
    PaperResult(
        "[BE09, Kuh09] divide-and-conquer",
        "(Delta+1)-coloring in O(Delta + log* n) via recursive defective classes",
        ("repro.algorithms.linear_in_delta:linear_in_delta_coloring",),
        "E13",
    ),
    PaperResult(
        "[MT20] / Section 3.1",
        "2-round list coloring from conflict-avoiding set families",
        ("repro.algorithms.mt20:mt20_list_coloring",),
        "E13",
    ),
    PaperResult(
        "Definitions 3.2/3.3",
        "tau&g-conflicts and the Psi_g relation",
        (
            "repro.core.conflict:tau_g_conflict",
            "repro.core.conflict:psi_g",
        ),
        "E10",
    ),
    PaperResult(
        "Lemmas 3.1/3.2/3.5",
        "zero-round solvability of P2 (type-indexed families)",
        (
            "repro.algorithms.mt_selection:exact_greedy_assignment",
            "repro.algorithms.mt_selection:seeded_family",
            "repro.algorithms.mt_selection:FamilyOracle",
        ),
        "E10, E12",
    ),
    PaperResult(
        "Lemma 3.6",
        "basic g-generalized OLDC algorithm with gamma-classes",
        (
            "repro.algorithms.oldc_basic:solve_oldc_basic",
            "repro.algorithms.oldc_basic:gamma_class",
            "repro.algorithms.oldc_basic:single_defect_restriction",
            "repro.core.colorspace:best_congruence_class",
        ),
        "E05, A01",
    ),
    PaperResult(
        "Lemmas 3.7/3.8 = Theorem 1.1",
        "main OLDC algorithm: O(log beta) rounds under sum (d+1)^2 >= a b^2 k",
        (
            "repro.algorithms.oldc_main:solve_oldc_main",
            "repro.algorithms.oldc_main:MainOLDC",
            "repro.analysis.bounds:kappa_theorem_1_1",
            "repro.analysis.bounds:theorem_1_1_message_bits",
        ),
        "E05, E07",
    ),
    PaperResult(
        "Theorem 1.2",
        "recursive color space reduction",
        ("repro.algorithms.colorspace_reduction:solve_with_reduction",),
        "E06",
    ),
    PaperResult(
        "Corollary 4.1",
        "2^O(sqrt(log beta log kappa)) via balanced branching",
        (
            "repro.algorithms.colorspace_reduction:corollary_4_1_p",
            "repro.algorithms.colorspace_reduction:solve_with_corollary_4_1",
        ),
        "",
    ),
    PaperResult(
        "Corollary 4.2",
        "message size O(|C|^{1/r}) at an O(r) round factor",
        ("repro.algorithms.colorspace_reduction:corollary_4_2_p",),
        "E06, E09",
    ),
    PaperResult(
        "Theorem 1.3",
        "(degree+1)-list arbdefective coloring via OLDC + degree halving",
        ("repro.algorithms.arblist:solve_list_arbdefective",),
        "E08",
    ),
    PaperResult(
        "Theorem 1.4",
        "(degree+1)-list coloring in CONGEST in sqrt(Delta) polylog + log* n",
        (
            "repro.algorithms.congest_coloring:congest_degree_plus_one",
            "repro.algorithms.congest_coloring:congest_delta_plus_one",
            "repro.analysis.bounds:theorem_1_4_rounds",
        ),
        "E09, E11, E13",
    ),
    PaperResult(
        "Section 1.1 regime discussion",
        "Thm 1.4 fills Delta in [omega(log n), o(log^2 n)]",
        (
            "repro.analysis.bounds:fhk_congest_rounds",
            "repro.analysis.bounds:gk21_rounds",
            "repro.algorithms.baselines:list_exchange_coloring",
        ),
        "E09, E11",
    ),
    PaperResult(
        "[Bar16] benchmark",
        "(1+eps)Delta-coloring in ~sqrt(Delta) + log* n (prior CONGEST best)",
        ("repro.algorithms.barenboim:barenboim_coloring",),
        "E13",
    ),
    PaperResult(
        "Appendix C",
        "internal computation costs; reduction tames them",
        ("repro.algorithms.mt_selection:candidate_space",),
        "E12",
    ),
    PaperResult(
        "Edge colorings (intro / [BE11a] line)",
        "edge coloring via line graphs; bounded neighborhood independence",
        (
            "repro.graphs.linegraph:edge_degree_plus_one_instance",
            "repro.graphs.hypergraphs:hypergraph_line_graph",
            "repro.graphs.hypergraphs:neighborhood_independence",
        ),
        "",
    ),
)


def resolve(symbol: str):
    """Import a ``module:attr`` path; raises if it does not exist."""
    module_name, attr = symbol.split(":")
    module = importlib.import_module(module_name)
    return getattr(module, attr)


def verify_all() -> list[str]:
    """Resolve every symbol; returns the list of broken references."""
    broken = []
    for entry in PAPER_MAP:
        for symbol in entry.symbols:
            try:
                resolve(symbol)
            except (ImportError, AttributeError) as exc:
                broken.append(f"{entry.result}: {symbol} ({exc})")
    return broken


def render() -> str:
    """Human-readable table of the map."""
    lines = []
    for entry in PAPER_MAP:
        lines.append(f"{entry.result} — {entry.statement}")
        for symbol in entry.symbols:
            lines.append(f"    {symbol}")
        if entry.experiment:
            lines.append(f"    measured by: {entry.experiment}")
    return "\n".join(lines)
