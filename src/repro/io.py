"""Serialization: instances, colorings, and run records as JSON.

A downstream user needs to move problem instances and solutions across
process boundaries — to archive experiment inputs, to feed externally
generated instances into the solvers, and to diff runs.  The schema is
deliberately plain JSON (no pickle):

* instance: ``{"directed": bool, "space": {"size", "offset"},
  "nodes": [...], "edges": [[u, v], ...],
  "lists": {"v": [colors...]}, "defects": {"v": {"color": d}}}``
* coloring: ``{"assignment": {"v": color},
  "orientation": [[u, v], ...] | null}``
* run record: instance + coloring + metrics summary + free-form info.

Round-trips are exact (tests include hypothesis round-trip properties).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import networkx as nx

from .core.coloring import ColoringResult, EdgeOrientation
from .core.colorspace import ColorSpace
from .core.instance import ListDefectiveInstance
from .sim.metrics import RunMetrics


# ----------------------------------------------------------------------
# instances
# ----------------------------------------------------------------------
def instance_to_dict(instance: ListDefectiveInstance) -> dict[str, Any]:
    """Schema dict of an instance (see module docstring)."""
    return {
        "directed": instance.directed,
        "space": {"size": instance.space.size, "offset": instance.space.offset},
        "nodes": sorted(instance.graph.nodes),
        "edges": sorted([int(u), int(v)] for u, v in instance.graph.edges),
        "lists": {str(v): list(instance.lists[v]) for v in instance.graph.nodes},
        "defects": {
            str(v): {str(x): d for x, d in sorted(instance.defects[v].items())}
            for v in instance.graph.nodes
        },
    }


def instance_from_dict(data: dict[str, Any]) -> ListDefectiveInstance:
    """Rebuild an instance from :func:`instance_to_dict` output."""
    graph = nx.DiGraph() if data["directed"] else nx.Graph()
    graph.add_nodes_from(int(v) for v in data["nodes"])
    graph.add_edges_from((int(u), int(v)) for u, v in data["edges"])
    space = ColorSpace(data["space"]["size"], data["space"].get("offset", 0))
    lists = {int(v): tuple(cols) for v, cols in data["lists"].items()}
    defects = {
        int(v): {int(x): int(d) for x, d in dv.items()}
        for v, dv in data["defects"].items()
    }
    return ListDefectiveInstance(graph, space, lists, defects)


# ----------------------------------------------------------------------
# colorings
# ----------------------------------------------------------------------
def coloring_to_dict(result: ColoringResult) -> dict[str, Any]:
    """Schema dict of a coloring (+ optional orientation)."""
    return {
        "assignment": {str(v): int(c) for v, c in sorted(result.assignment.items())},
        "orientation": (
            sorted([int(a), int(b)] for a, b in result.orientation.arcs)
            if result.orientation is not None
            else None
        ),
    }


def coloring_from_dict(data: dict[str, Any]) -> ColoringResult:
    """Rebuild a coloring from :func:`coloring_to_dict` output."""
    assignment = {int(v): int(c) for v, c in data["assignment"].items()}
    orientation = None
    if data.get("orientation") is not None:
        orientation = EdgeOrientation(
            {(int(a), int(b)) for a, b in data["orientation"]}
        )
    return ColoringResult(assignment, orientation)


# ----------------------------------------------------------------------
# run records
# ----------------------------------------------------------------------
def run_record(
    instance: ListDefectiveInstance,
    result: ColoringResult,
    metrics: RunMetrics,
    info: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Bundle instance + coloring + metric summary into one record."""
    return {
        "schema": "repro.run/1",
        "instance": instance_to_dict(instance),
        "coloring": coloring_to_dict(result),
        "metrics": metrics.summary(),
        "info": dict(info or {}),
    }


def save_json(data: dict[str, Any], path: str | Path) -> None:
    """Write a schema dict as sorted, indented JSON."""
    Path(path).write_text(json.dumps(data, indent=1, sort_keys=True))


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a JSON file into a dict."""
    return json.loads(Path(path).read_text())


def save_instance(instance: ListDefectiveInstance, path: str | Path) -> None:
    """Serialize one instance to a JSON file."""
    save_json(instance_to_dict(instance), path)


def load_instance(path: str | Path) -> ListDefectiveInstance:
    """Load an instance saved by :func:`save_instance`."""
    return instance_from_dict(load_json(path))


def save_run(
    instance: ListDefectiveInstance,
    result: ColoringResult,
    metrics: RunMetrics,
    path: str | Path,
    info: dict[str, Any] | None = None,
) -> None:
    """Write a full run record to a JSON file."""
    save_json(run_record(instance, result, metrics, info), path)


def save_graph_edgelist(graph: nx.Graph, path: str | Path) -> None:
    """Plain whitespace edge list (``u v`` per line; ``# n <count>`` header
    records isolated nodes).  The inverse of :func:`load_graph_edgelist`."""
    lines = [f"# n {graph.number_of_nodes()}"]
    lines += [f"{u} {v}" for u, v in sorted(tuple(sorted(e)) for e in graph.edges)]
    Path(path).write_text("\n".join(lines) + "\n")


def load_graph_edgelist(path: str | Path) -> nx.Graph:
    """Read a whitespace edge list with integer node ids.

    Accepts comments (``#``); an optional ``# n <count>`` header adds
    isolated nodes ``0..count-1`` missing from the edges.
    """
    g = nx.Graph()
    declared_n = None
    for raw in Path(path).read_text().splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line[1:].split()
            if len(parts) == 2 and parts[0] == "n":
                declared_n = int(parts[1])
            continue
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"bad edge line: {raw!r}")
        u, v = int(parts[0]), int(parts[1])
        g.add_edge(u, v)
    if declared_n is not None:
        g.add_nodes_from(range(declared_n))
    return g


def load_run(path: str | Path) -> tuple[ListDefectiveInstance, ColoringResult, dict]:
    """Load a run record: (instance, coloring, raw record)."""
    data = load_json(path)
    if data.get("schema") != "repro.run/1":
        raise ValueError(f"not a repro run record: {path}")
    return (
        instance_from_dict(data["instance"]),
        coloring_from_dict(data["coloring"]),
        data,
    )
