"""Client side: connections, pinned request sets, synthetic heavy traffic.

Three layers, each used by the next:

* :class:`ServeClient` — one connection speaking the line protocol
  (``color``/``ping``/``stats``/``shutdown``);
* :func:`synth_requests` — a *pinned* deterministic request set (pure
  function of its seed), which is what makes served-vs-offline
  equivalence checkable: tests and ``benchmarks/bench_serve.py`` replay
  the same set through :func:`~repro.sim.batch.linial_vectorized_batch`
  and demand bit-identical colorings;
* :func:`fire_traffic` — the heavy-traffic generator: N concurrent
  connections each issuing a slice of a pinned request set, yielding a
  :class:`TrafficReport` with wall-clock, latency samples, and RPS.

Requests use *spread* initial colors (node ``i`` starts at color
``64 * i``) rather than the identity: identity colorings on small
graphs make ``linial_schedule`` empty (nothing to serve), while the
spread forces a large initial palette and multi-round schedules — the
same trick the fuzz harness uses to keep instances non-trivial.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from .protocol import (
    STATUS_OK,
    ServeRequest,
    ServeResponse,
    decode_line,
    encode_line,
)


class ServeClient:
    """One client connection to a :class:`~repro.serve.daemon.ColoringServer`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> "ServeClient":
        """Open the connection (idempotent; returns self for chaining)."""
        if self._writer is None:
            from .daemon import MAX_LINE_BYTES

            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=MAX_LINE_BYTES
            )
        return self

    async def close(self) -> None:
        """Close the connection (safe to call twice)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = None
            self._writer = None

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one protocol line and read its one-line reply."""
        await self.connect()
        assert self._reader is not None and self._writer is not None
        self._writer.write(encode_line(payload))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection mid-request")
        return decode_line(line)

    async def color(self, request: ServeRequest) -> ServeResponse:
        """Submit one coloring request and wait for its outcome."""
        reply = await self.request({"op": "color", "request": request.to_dict()})
        return ServeResponse.from_dict(reply)

    async def ping(self) -> bool:
        """Liveness check."""
        reply = await self.request({"op": "ping"})
        return bool(reply.get("ok"))

    async def stats(self) -> dict[str, Any]:
        """The daemon's scheduler statistics snapshot."""
        reply = await self.request({"op": "stats"})
        return dict(reply.get("stats") or {})

    async def shutdown(self) -> None:
        """Ask the daemon to shut down (connection closes after the ack)."""
        await self.request({"op": "shutdown"})
        await self.close()


# ----------------------------------------------------------------------
# pinned synthetic request sets
# ----------------------------------------------------------------------
#: Families the synthetic generator draws from, with size-parameter names.
_SYNTH_FAMILIES: tuple[tuple[str, dict[str, Any]], ...] = (
    ("ring", {"n": (8, 48)}),
    ("path", {"n": (8, 48)}),
    ("random_regular", {"n": (8, 40), "degree": (3, 3), "seed": "seed"}),
    ("gnp", {"n": (10, 40), "p": 0.15, "seed": "seed"}),
    ("random_tree", {"n": (8, 48), "seed": "seed"}),
    ("hypercube", {"dim": (3, 5)}),
)


def _spread_colors(n: int) -> dict[int, int]:
    """Spread initial colors (node ``i`` -> ``64 * i``): forces a large
    initial palette so the Linial schedule is non-empty even on small
    graphs — identity colorings on tiny instances serve in zero rounds.
    """
    return {v: 64 * v for v in range(n)}


def synth_requests(
    seed: int,
    count: int,
    *,
    defect_choices: Sequence[int] = (0,),
    fault_plans: Sequence[dict[str, Any] | None] = (None,),
) -> list[ServeRequest]:
    """A pinned request set: a pure function of ``(seed, count, ...)``.

    Draws graph families/sizes, defect budgets, and (optionally) fault
    plans from a private :class:`random.Random` so the same arguments
    always produce the same requests — the property the equivalence
    battery and the benchmark lean on.  Generators that need their own
    randomness get a per-request derived seed (the sentinel ``"seed"``
    in the family table), and node counts for ``random_regular`` are
    forced even to keep the family constructible.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = random.Random(seed)
    requests: list[ServeRequest] = []
    for i in range(count):
        family, spec = _SYNTH_FAMILIES[rng.randrange(len(_SYNTH_FAMILIES))]
        params: dict[str, Any] = {}
        for key, value in spec.items():
            if value == "seed":
                params[key] = rng.randrange(2**31)
            elif isinstance(value, tuple):
                params[key] = rng.randint(*value)
            else:
                params[key] = value
        if family == "random_regular" and params["n"] % 2:
            params["n"] += 1  # n*d must be even for a 3-regular graph
        if family == "hypercube":
            n = 2 ** params["dim"]
        else:
            n = params["n"]
        requests.append(
            ServeRequest(
                family=family,
                family_params=params,
                defect=defect_choices[rng.randrange(len(defect_choices))],
                initial_colors=_spread_colors(n),
                faults=fault_plans[rng.randrange(len(fault_plans))],
                request_id=f"synth-{seed}-{i}",
            )
        )
    return requests


# ----------------------------------------------------------------------
# the heavy-traffic generator
# ----------------------------------------------------------------------
@dataclass
class TrafficReport:
    """What a :func:`fire_traffic` burst measured.

    ``latencies`` holds one total-latency sample (seconds) per completed
    request; ``responses`` holds one
    :class:`~repro.serve.protocol.ServeResponse` per *completed request*
    (a list, in completion order) so callers can check every served
    coloring, not just the aggregates.  Duplicate ``request_id``\\ s are
    each kept — an earlier design keyed responses by id and silently
    dropped all but the last duplicate, which made a daemon that answers
    the same id twice look indistinguishable from a correct one.  Use
    :meth:`response_for` for the unique-id lookup and :meth:`by_id` to
    see duplication explicitly.

    ``requests`` counts *issued* requests; ``len(report.responses)``
    counts completed ones, and the two differ when connections die
    mid-burst.
    """

    clients: int
    requests: int
    wall_seconds: float
    responses: list[ServeResponse] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)

    @property
    def completed(self) -> int:
        """Requests that round-tripped to a response, any status."""
        return len(self.responses)

    @property
    def completed_ok(self) -> int:
        """Responses with :data:`~repro.serve.protocol.STATUS_OK`."""
        return sum(1 for r in self.responses if r.status == STATUS_OK)

    @property
    def rps(self) -> float:
        """Completed requests/second over the burst's wall-clock.

        Counts *completed* responses, not issued requests: dividing the
        issue count by the wall-clock inflates throughput whenever some
        requests error out or never complete.
        """
        return self.completed / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def ok_rps(self) -> float:
        """Successfully served (``ok``-status) requests/second."""
        return (
            self.completed_ok / self.wall_seconds if self.wall_seconds else 0.0
        )

    def by_id(self) -> dict[str, list[ServeResponse]]:
        """Responses grouped by request id (anonymous ones under ``""``)."""
        groups: dict[str, list[ServeResponse]] = {}
        for response in self.responses:
            groups.setdefault(response.request_id or "", []).append(response)
        return groups

    def response_for(self, request_id: str) -> ServeResponse:
        """The unique response for ``request_id``.

        Raises ``KeyError`` if the id never completed and ``ValueError``
        if the daemon answered it more than once — duplicate answers are
        a protocol violation the caller must see, not a dict overwrite.
        """
        matches = [r for r in self.responses if r.request_id == request_id]
        if not matches:
            raise KeyError(request_id)
        if len(matches) > 1:
            raise ValueError(
                f"{len(matches)} responses for request_id {request_id!r}"
            )
        return matches[0]

    def status_counts(self) -> dict[str, int]:
        """How many responses landed in each status."""
        counts: dict[str, int] = {}
        for response in self.responses:
            counts[response.status] = counts.get(response.status, 0) + 1
        return counts


async def fire_traffic(
    host: str,
    port: int,
    requests: Sequence[ServeRequest],
    *,
    clients: int,
) -> TrafficReport:
    """Fire a pinned request set at a daemon from ``clients`` connections.

    The request list is dealt round-robin across ``clients`` concurrent
    connections; each connection issues its slice sequentially (so
    in-flight concurrency == live connections, the standard serving-
    benchmark shape).  Latency samples are whole-request wall-clock as
    the *client* observes it — queue wait, batched service, and protocol
    overhead included.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    # ``clients`` reports connections that actually open: an empty
    # request set opens zero (the old ``min(...) or clients`` fallback
    # claimed N clients for zero requests).
    report = TrafficReport(
        clients=min(clients, len(requests)),
        requests=len(requests),
        wall_seconds=0.0,
    )

    async def run_client(slice_requests: list[ServeRequest]) -> None:
        client = ServeClient(host, port)
        try:
            await client.connect()
            for request in slice_requests:
                t0 = time.perf_counter()
                response = await client.color(request)
                report.latencies.append(time.perf_counter() - t0)
                report.responses.append(response)
        finally:
            await client.close()

    slices: list[list[ServeRequest]] = [[] for _ in range(clients)]
    for i, request in enumerate(requests):
        slices[i % clients].append(request)
    t_start = time.perf_counter()
    await asyncio.gather(*(run_client(s) for s in slices if s))
    report.wall_seconds = time.perf_counter() - t_start
    return report
