"""Client side: connections, pinned request sets, synthetic heavy traffic.

Three layers, each used by the next:

* :class:`ServeClient` — one connection speaking the line protocol
  (``color``/``ping``/``stats``/``shutdown``);
* :func:`synth_requests` — a *pinned* deterministic request set (pure
  function of its seed), which is what makes served-vs-offline
  equivalence checkable: tests and ``benchmarks/bench_serve.py`` replay
  the same set through :func:`~repro.sim.batch.linial_vectorized_batch`
  and demand bit-identical colorings;
* :func:`fire_traffic` — the heavy-traffic generator: N concurrent
  connections each issuing a slice of a pinned request set, yielding a
  :class:`TrafficReport` with wall-clock, latency samples, and RPS.

Requests use *spread* initial colors (node ``i`` starts at color
``64 * i``) rather than the identity: identity colorings on small
graphs make ``linial_schedule`` empty (nothing to serve), while the
spread forces a large initial palette and multi-round schedules — the
same trick the fuzz harness uses to keep instances non-trivial.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from .protocol import (
    STATUS_OK,
    STATUS_REJECTED,
    ServeRequest,
    ServeResponse,
    decode_line,
    encode_line,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Seeded-jitter exponential backoff for resubmitting shed requests.

    ``attempts`` is the *total* number of tries (first submission
    included).  The delay before retry ``k`` (0-based) is
    ``base_ms * multiplier**k``, capped at ``max_ms``, jittered by a
    uniform factor in ``[1 - jitter, 1 + jitter]`` drawn from a
    :class:`random.Random` seeded with ``seed`` — the whole delay
    sequence is a pure function of the policy, so traffic runs that
    retry are as replayable as ones that don't.  A server-provided
    ``retry_after_ms`` hint (attached to every ``rejected`` response)
    acts as a *floor*: the client never comes back sooner than the
    server asked.

    The policy retries only what is safe to retry: ``rejected``
    responses (the server did no work, by contract) and connection-level
    failures of idempotent ops — a coloring request is a pure function
    of its recipe, so re-running one cannot produce a different answer,
    only spend more compute.
    """

    attempts: int = 3
    base_ms: float = 25.0
    multiplier: float = 2.0
    max_ms: float = 2000.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_ms <= 0 or self.max_ms <= 0:
            raise ValueError("base_ms and max_ms must be > 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def rng(self) -> random.Random:
        """A fresh seeded jitter source (one per retried request)."""
        return random.Random(self.seed)

    def delay_ms(
        self,
        retry_index: int,
        rng: random.Random,
        retry_after_ms: float | None = None,
    ) -> float:
        """The backoff before retry ``retry_index`` (0-based), in ms."""
        if retry_index < 0:
            raise ValueError(f"retry_index must be >= 0, got {retry_index}")
        backoff = min(self.max_ms, self.base_ms * self.multiplier**retry_index)
        backoff *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        if retry_after_ms is not None:
            backoff = max(backoff, float(retry_after_ms))
        return backoff


class ServeClient:
    """One client connection to a :class:`~repro.serve.daemon.ColoringServer`.

    ``timeout`` is a per-op wall-clock bound (seconds) applied to every
    :meth:`request` round-trip via :func:`asyncio.wait_for` — with it
    set, a hung daemon costs a ``TimeoutError``, never a client that
    blocks forever.  ``None`` (the default) keeps the historical
    unbounded behavior.
    """

    def __init__(
        self, host: str, port: int, *, timeout: float | None = None
    ) -> None:
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be > 0 or None, got {timeout}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        #: Retries performed by :meth:`color_retrying` over this
        #: client's lifetime (resubmissions, not first attempts).
        self.retries = 0

    async def connect(self) -> "ServeClient":
        """Open the connection (idempotent; returns self for chaining)."""
        if self._writer is None:
            from .daemon import MAX_LINE_BYTES

            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port, limit=MAX_LINE_BYTES
            )
        return self

    async def close(self) -> None:
        """Close the connection (safe to call twice)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = None
            self._writer = None

    async def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one protocol line and read its one-line reply.

        Bounded by ``self.timeout`` when set; on timeout the connection
        is closed (its framing is now unknown — a late reply would be
        misread as the answer to the *next* request) and the
        ``asyncio.TimeoutError`` propagates.
        """
        if self.timeout is None:
            return await self._request(payload)
        try:
            return await asyncio.wait_for(
                self._request(payload), timeout=self.timeout
            )
        except (asyncio.TimeoutError, TimeoutError):
            await self.close()
            raise

    async def _request(self, payload: dict[str, Any]) -> dict[str, Any]:
        await self.connect()
        assert self._reader is not None and self._writer is not None
        self._writer.write(encode_line(payload))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection mid-request")
        return decode_line(line)

    async def color(self, request: ServeRequest) -> ServeResponse:
        """Submit one coloring request and wait for its outcome."""
        reply = await self.request({"op": "color", "request": request.to_dict()})
        return ServeResponse.from_dict(reply)

    async def color_retrying(
        self, request: ServeRequest, policy: RetryPolicy
    ) -> ServeResponse:
        """Submit one coloring request, resubmitting per ``policy``.

        Retries ``rejected`` responses (honoring the server's
        ``retry_after_ms`` hint) and connection-level failures
        (``ConnectionError``/timeout — safe because a coloring request
        is a pure function of its recipe).  Returns the first
        non-rejected response, or the last ``rejected`` one once the
        attempt budget is spent; re-raises the last connection failure
        likewise.  Any other status (``ok``/``halted``/``timeout``/
        ``error``) is terminal — the server *did* the work or made a
        definitive call, so retrying would be load amplification.
        """
        rng = policy.rng()
        last_exc: Exception | None = None
        response: ServeResponse | None = None
        for attempt in range(policy.attempts):
            if attempt > 0:
                hint = (
                    response.retry_after_ms if response is not None else None
                )
                delay = policy.delay_ms(attempt - 1, rng, hint)
                await asyncio.sleep(delay / 1000.0)
                self.retries += 1
            try:
                response = await self.color(request)
                last_exc = None
            except (ConnectionError, asyncio.TimeoutError, TimeoutError) as exc:
                last_exc = exc
                response = None
                await self.close()
                continue
            if response.status != STATUS_REJECTED:
                return response
        if last_exc is not None:
            raise last_exc
        assert response is not None
        return response

    async def ping(self) -> bool:
        """Liveness check."""
        reply = await self.request({"op": "ping"})
        return bool(reply.get("ok"))

    async def stats(self) -> dict[str, Any]:
        """The daemon's scheduler statistics snapshot."""
        reply = await self.request({"op": "stats"})
        return dict(reply.get("stats") or {})

    async def shutdown(self) -> None:
        """Ask the daemon to shut down (connection closes after the ack)."""
        await self.request({"op": "shutdown"})
        await self.close()


# ----------------------------------------------------------------------
# pinned synthetic request sets
# ----------------------------------------------------------------------
#: Families the synthetic generator draws from, with size-parameter names.
_SYNTH_FAMILIES: tuple[tuple[str, dict[str, Any]], ...] = (
    ("ring", {"n": (8, 48)}),
    ("path", {"n": (8, 48)}),
    ("random_regular", {"n": (8, 40), "degree": (3, 3), "seed": "seed"}),
    ("gnp", {"n": (10, 40), "p": 0.15, "seed": "seed"}),
    ("random_tree", {"n": (8, 48), "seed": "seed"}),
    ("hypercube", {"dim": (3, 5)}),
)


def _spread_colors(n: int) -> dict[int, int]:
    """Spread initial colors (node ``i`` -> ``64 * i``): forces a large
    initial palette so the Linial schedule is non-empty even on small
    graphs — identity colorings on tiny instances serve in zero rounds.
    """
    return {v: 64 * v for v in range(n)}


def synth_requests(
    seed: int,
    count: int,
    *,
    defect_choices: Sequence[int] = (0,),
    fault_plans: Sequence[dict[str, Any] | None] = (None,),
) -> list[ServeRequest]:
    """A pinned request set: a pure function of ``(seed, count, ...)``.

    Draws graph families/sizes, defect budgets, and (optionally) fault
    plans from a private :class:`random.Random` so the same arguments
    always produce the same requests — the property the equivalence
    battery and the benchmark lean on.  Generators that need their own
    randomness get a per-request derived seed (the sentinel ``"seed"``
    in the family table), and node counts for ``random_regular`` are
    forced even to keep the family constructible.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = random.Random(seed)
    requests: list[ServeRequest] = []
    for i in range(count):
        family, spec = _SYNTH_FAMILIES[rng.randrange(len(_SYNTH_FAMILIES))]
        params: dict[str, Any] = {}
        for key, value in spec.items():
            if value == "seed":
                params[key] = rng.randrange(2**31)
            elif isinstance(value, tuple):
                params[key] = rng.randint(*value)
            else:
                params[key] = value
        if family == "random_regular" and params["n"] % 2:
            params["n"] += 1  # n*d must be even for a 3-regular graph
        if family == "hypercube":
            n = 2 ** params["dim"]
        else:
            n = params["n"]
        requests.append(
            ServeRequest(
                family=family,
                family_params=params,
                defect=defect_choices[rng.randrange(len(defect_choices))],
                initial_colors=_spread_colors(n),
                faults=fault_plans[rng.randrange(len(fault_plans))],
                request_id=f"synth-{seed}-{i}",
            )
        )
    return requests


# ----------------------------------------------------------------------
# the heavy-traffic generator
# ----------------------------------------------------------------------
@dataclass
class TrafficReport:
    """What a :func:`fire_traffic` burst measured.

    ``latencies`` holds one total-latency sample (seconds) per completed
    request; ``responses`` holds one
    :class:`~repro.serve.protocol.ServeResponse` per *completed request*
    (a list, in completion order) so callers can check every served
    coloring, not just the aggregates.  Duplicate ``request_id``\\ s are
    each kept — an earlier design keyed responses by id and silently
    dropped all but the last duplicate, which made a daemon that answers
    the same id twice look indistinguishable from a correct one.  Use
    :meth:`response_for` for the unique-id lookup and :meth:`by_id` to
    see duplication explicitly.

    ``requests`` counts *issued* requests; ``len(report.responses)``
    counts completed ones, and the two differ when connections die
    mid-burst.

    ``errors`` records per-client failures: one entry per client whose
    connection died mid-slice (``{"client": index, "type": ...,
    "message": ..., "completed": how many of its requests had already
    round-tripped}``).  A dying client used to raise through
    ``asyncio.gather`` and abort every *other* client too, losing the
    whole report — now survivors finish and the casualty list is data.
    ``retries`` counts resubmissions performed under a
    :class:`RetryPolicy` (0 without one).
    """

    clients: int
    requests: int
    wall_seconds: float
    responses: list[ServeResponse] = field(default_factory=list)
    latencies: list[float] = field(default_factory=list)
    errors: list[dict[str, Any]] = field(default_factory=list)
    retries: int = 0

    @property
    def completed(self) -> int:
        """Requests that round-tripped to a response, any status."""
        return len(self.responses)

    @property
    def failed_clients(self) -> int:
        """Clients whose connection died before finishing their slice."""
        return len(self.errors)

    @property
    def completed_ok(self) -> int:
        """Responses with :data:`~repro.serve.protocol.STATUS_OK`."""
        return sum(1 for r in self.responses if r.status == STATUS_OK)

    @property
    def rps(self) -> float:
        """Completed requests/second over the burst's wall-clock.

        Counts *completed* responses, not issued requests: dividing the
        issue count by the wall-clock inflates throughput whenever some
        requests error out or never complete.
        """
        return self.completed / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def ok_rps(self) -> float:
        """Successfully served (``ok``-status) requests/second."""
        return (
            self.completed_ok / self.wall_seconds if self.wall_seconds else 0.0
        )

    def by_id(self) -> dict[str, list[ServeResponse]]:
        """Responses grouped by request id (anonymous ones under ``""``)."""
        groups: dict[str, list[ServeResponse]] = {}
        for response in self.responses:
            groups.setdefault(response.request_id or "", []).append(response)
        return groups

    def response_for(self, request_id: str) -> ServeResponse:
        """The unique response for ``request_id``.

        Raises ``KeyError`` if the id never completed and ``ValueError``
        if the daemon answered it more than once — duplicate answers are
        a protocol violation the caller must see, not a dict overwrite.
        """
        matches = [r for r in self.responses if r.request_id == request_id]
        if not matches:
            raise KeyError(request_id)
        if len(matches) > 1:
            raise ValueError(
                f"{len(matches)} responses for request_id {request_id!r}"
            )
        return matches[0]

    def status_counts(self) -> dict[str, int]:
        """How many responses landed in each status."""
        counts: dict[str, int] = {}
        for response in self.responses:
            counts[response.status] = counts.get(response.status, 0) + 1
        return counts


async def fire_traffic(
    host: str,
    port: int,
    requests: Sequence[ServeRequest],
    *,
    clients: int,
    timeout: float | None = None,
    retry_policy: RetryPolicy | None = None,
) -> TrafficReport:
    """Fire a pinned request set at a daemon from ``clients`` connections.

    The request list is dealt round-robin across ``clients`` concurrent
    connections; each connection issues its slice sequentially (so
    in-flight concurrency == live connections, the standard serving-
    benchmark shape).  Latency samples are whole-request wall-clock as
    the *client* observes it — queue wait, batched service, and protocol
    overhead included; for retried requests the sample spans *all*
    attempts and backoff waits, which is what the end user experiences.

    ``timeout`` bounds each op's round-trip (see :class:`ServeClient`);
    ``retry_policy`` resubmits shed/disconnected requests with seeded-
    jitter backoff.  A client whose connection dies for good no longer
    aborts the burst: its failure is appended to ``report.errors`` and
    the surviving clients finish their slices.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    # ``clients`` reports connections that actually open: an empty
    # request set opens zero (the old ``min(...) or clients`` fallback
    # claimed N clients for zero requests).
    report = TrafficReport(
        clients=min(clients, len(requests)),
        requests=len(requests),
        wall_seconds=0.0,
    )

    async def run_client(index: int, slice_requests: list[ServeRequest]) -> None:
        client = ServeClient(host, port, timeout=timeout)
        completed = 0
        try:
            await client.connect()
            for request in slice_requests:
                t0 = time.perf_counter()
                if retry_policy is None:
                    response = await client.color(request)
                else:
                    response = await client.color_retrying(
                        request, retry_policy
                    )
                report.latencies.append(time.perf_counter() - t0)
                report.responses.append(response)
                completed += 1
        except Exception as exc:  # noqa: BLE001 — becomes report data
            report.errors.append(
                {
                    "client": index,
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "completed": completed,
                }
            )
        finally:
            report.retries += client.retries
            await client.close()

    slices: list[list[ServeRequest]] = [[] for _ in range(clients)]
    for i, request in enumerate(requests):
        slices[i % clients].append(request)
    t_start = time.perf_counter()
    await asyncio.gather(
        *(run_client(i, s) for i, s in enumerate(slices) if s)
    )
    report.wall_seconds = time.perf_counter() - t_start
    return report
