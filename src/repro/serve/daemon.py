"""The serving daemon: asyncio TCP transport over the batcher.

:class:`ColoringServer` is a long-lived ``asyncio.start_server`` loop on
a local port.  Each connection speaks the newline-delimited JSON
protocol of :mod:`repro.serve.protocol`: ``color`` ops are submitted to
the shared :class:`~repro.serve.scheduler.ContinuousBatcher` and their
futures awaited per-connection (so thousands of connections overlap
freely while the batcher packs their instances into shared rounds), and
``ping``/``stats``/``shutdown`` answer inline.  The server and the
scheduler loop run as tasks on one event loop — no threads, no shared
mutable state beyond the batcher's own queue.
"""

from __future__ import annotations

import asyncio
from typing import Any

from .protocol import (
    ServeRequest,
    decode_line,
    encode_line,
    error_response,
)
from .scheduler import ContinuousBatcher, ServeConfig

#: Upper bound on one protocol line (requests are recipes, not payloads;
#: responses carry full colorings, so reads get generous headroom).
MAX_LINE_BYTES = 16 * 1024 * 1024


class ColoringServer:
    """A long-lived coloring service on a local TCP port.

    Start with :meth:`start` (binds ``host:port``; port ``0`` picks a
    free one — read it back from :attr:`port`), stop with :meth:`stop`
    or a client ``shutdown`` op.  :meth:`serve_forever` is the blocking
    convenience for a foreground daemon process
    (``repro-cli serve``); tests instead start/stop around their
    traffic.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_line_bytes: int = MAX_LINE_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.max_line_bytes = max_line_bytes
        self.batcher = ContinuousBatcher(config)
        self._server: asyncio.AbstractServer | None = None
        self._scheduler_task: asyncio.Task | None = None
        self._shutdown = asyncio.Event()
        #: Set when the scheduler loop died with an exception (every
        #: pending future was failed first); the daemon keeps answering
        #: protocol lines, with ``color`` ops erroring fast.
        self.scheduler_error: BaseException | None = None
        #: The :meth:`~repro.serve.scheduler.ContinuousBatcher.drain`
        #: accounting from the last :meth:`stop`.
        self.drain_report: dict[str, int] | None = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and launch the scheduler loop."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=self.max_line_bytes,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._scheduler_task = asyncio.create_task(self.batcher.run())

    async def stop(self, *, drain_s: float | None = None) -> None:
        """Graceful shutdown: stop accepting, drain, release the port.

        The ordered teardown the overload layer promises: close the
        listener (no new connections), drain the batcher (in-flight work
        finishes or times out inside ``drain_s`` — default
        ``config.drain_timeout_s`` — and anything still pending fails
        with a structured error, so no awaiter hangs), then reap the
        scheduler task.  A scheduler that died mid-traffic is *reaped*,
        not re-raised: its exception lands in :attr:`scheduler_error`
        and its pending futures were already failed by the loop itself.
        """
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        if self._scheduler_task is not None and not self._scheduler_task.done():
            self.drain_report = await self.batcher.drain(drain_s)
        self.batcher.stop()
        if self._scheduler_task is not None:
            results = await asyncio.gather(
                self._scheduler_task, return_exceptions=True
            )
            if isinstance(results[0], BaseException) and not isinstance(
                results[0], asyncio.CancelledError
            ):
                self.scheduler_error = results[0]
            self._scheduler_task = None
        self._shutdown.set()

    async def serve_forever(self) -> None:
        """Start (if needed) and block until a shutdown is requested."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection: request lines in, response lines out.

        Requests on a single connection are answered in order (each
        awaited before the next line is read) — concurrency comes from
        many connections, matching how the traffic generator and the
        benchmark drive the daemon.  A malformed line gets an ``error``
        response rather than killing the connection.  A line exceeding
        ``max_line_bytes`` *also* gets an ``error`` response naming the
        limit, then the connection is closed deliberately: the
        unconsumed remainder of the oversized line would otherwise be
        misparsed as new requests, so framing cannot be trusted past
        this point.  (Historically the overrun raised out of
        ``readline`` and silently dropped the connection — the client
        hung with no explanation.)
        """
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    ValueError,  # StreamReader wraps LimitOverrunError
                    asyncio.LimitOverrunError,
                    asyncio.IncompleteReadError,
                ):
                    reply = error_response(
                        ValueError(
                            "request line exceeds the protocol limit of "
                            f"{self.max_line_bytes} bytes; closing connection"
                        )
                    ).to_dict()
                    writer.write(encode_line(reply))
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    payload = decode_line(line)
                    reply = await self._dispatch(payload)
                except Exception as exc:  # noqa: BLE001 — wire-level fault
                    reply = error_response(exc).to_dict()
                writer.write(encode_line(reply))
                await writer.drain()
                if payload_requests_shutdown(reply):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Route one decoded protocol op to its handler."""
        op = payload.get("op")
        if op == "color":
            request = ServeRequest.from_dict(payload.get("request") or {})
            response = await self.batcher.submit(request)
            return response.to_dict()
        if op == "ping":
            return {"op": "ping", "ok": True}
        if op == "stats":
            return {"op": "stats", "stats": self.batcher.stats()}
        if op == "shutdown":
            self._shutdown.set()
            return {"op": "shutdown", "ok": True}
        raise ValueError(f"unknown protocol op {op!r}")


def payload_requests_shutdown(reply: dict[str, Any]) -> bool:
    """Whether a reply ends its connection (the shutdown acknowledgment)."""
    return reply.get("op") == "shutdown"
