"""The wire protocol of the coloring daemon: requests, responses, framing.

One message per line, each line one JSON object (newline-delimited JSON
— append-friendly, streamable, debuggable with ``nc``).  A client sends
``{"op": "color", ...}`` envelopes carrying a :class:`ServeRequest` and
reads back one :class:`ServeResponse` line per request; the auxiliary
ops (``ping``, ``stats``, ``shutdown``) are single-line exchanges the
daemon answers inline.

A request names its instance *by construction recipe* — graph family +
parameters + seed, optional initial colors, defect budget, optional
:class:`~repro.faults.FaultPlan` dict — never by shipping an adjacency
list.  That keeps request lines tiny under heavy traffic and makes the
served-vs-offline equivalence check exact: anyone can rebuild the same
graph from the recipe and replay the same request set through
:func:`~repro.sim.batch.linial_vectorized_batch` (which is what
``benchmarks/bench_serve.py`` and the test suite do).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

#: Protocol version spoken by this daemon; responses echo it so clients
#: can detect a mismatched server before misreading fields.  Version 2
#: added overload protection: the ``rejected``/``timeout`` statuses, the
#: per-request ``deadline_ms`` field, and the ``retry_after_ms`` hint.
SERVE_PROTOCOL_VERSION = 2

#: Request states a response can report.
STATUS_OK = "ok"
STATUS_HALTED = "halted"
STATUS_ERROR = "error"
#: The admission controller shed the request (queue at ``max_queue``, or
#: the daemon is draining).  The server did *no* work on a rejected
#: request, so resubmitting it is always safe; the response's
#: ``retry_after_ms`` hints when.
STATUS_REJECTED = "rejected"
#: The request's ``deadline_ms`` expired before a result was produced —
#: in the queue, at packing, or mid-run (the instance is evicted rather
#: than left burning batch slots).  No coloring is attached.
STATUS_TIMEOUT = "timeout"

#: Statuses the admission/deadline machinery can legally produce; a
#: response outside this set under overload is a server bug.
OVERLOAD_STATUSES = frozenset(
    {STATUS_OK, STATUS_HALTED, STATUS_ERROR, STATUS_REJECTED, STATUS_TIMEOUT}
)


@dataclass(frozen=True)
class ServeRequest:
    """One coloring request: a graph recipe plus algorithm configuration.

    ``family``/``family_params`` name a generator in
    :mod:`repro.graphs.generators` (e.g. ``ring`` with ``{"n": 16}``);
    ``initial_colors`` optionally overrides the identity initial
    coloring (JSON object keys arrive as strings and are coerced back to
    integer node labels); ``defect`` selects the defect-``d`` schedule;
    ``faults`` is an optional :meth:`~repro.faults.FaultPlan.to_dict`
    payload — crash-stop plans are how the serving tests prove a dead
    instance cannot take its batch siblings down.  ``request_id`` is a
    client-chosen tag echoed verbatim in the response.  ``deadline_ms``
    is an optional per-request latency budget measured from the moment
    the daemon accepts the request: one it cannot honor resolves as
    :data:`STATUS_TIMEOUT` — enforced at admission, at packing, and
    between rounds, so a doomed instance is evicted instead of burning
    batch slots.
    """

    family: str
    family_params: dict[str, Any] = field(default_factory=dict)
    defect: int = 0
    initial_colors: dict[int, int] | None = None
    faults: dict[str, Any] | None = None
    request_id: str | None = None
    deadline_ms: float | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.family, str) or not self.family:
            raise ValueError("request needs a non-empty graph family name")
        if self.defect < 0:
            raise ValueError(f"defect must be >= 0, got {self.defect}")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be > 0, got {self.deadline_ms}"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict; inverse of :meth:`from_dict`."""
        out: dict[str, Any] = {
            "family": self.family,
            "family_params": dict(self.family_params),
            "defect": self.defect,
        }
        if self.initial_colors is not None:
            out["initial_colors"] = {
                str(k): int(v) for k, v in self.initial_colors.items()
            }
        if self.faults is not None:
            out["faults"] = dict(self.faults)
        if self.request_id is not None:
            out["request_id"] = self.request_id
        if self.deadline_ms is not None:
            out["deadline_ms"] = float(self.deadline_ms)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ServeRequest":
        """Parse a request payload (unknown keys rejected, keys coerced)."""
        known = {
            "family",
            "family_params",
            "defect",
            "initial_colors",
            "faults",
            "request_id",
            "deadline_ms",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        init = data.get("initial_colors")
        return cls(
            family=data.get("family", ""),
            family_params=dict(data.get("family_params") or {}),
            defect=int(data.get("defect", 0)),
            initial_colors=(
                None
                if init is None
                else {int(k): int(v) for k, v in init.items()}
            ),
            faults=(
                None if data.get("faults") is None else dict(data["faults"])
            ),
            request_id=data.get("request_id"),
            deadline_ms=(
                None
                if data.get("deadline_ms") is None
                else float(data["deadline_ms"])
            ),
        )

    # ------------------------------------------------------------------
    def build_graph(self):
        """Materialize the request's graph from its family recipe."""
        from ..graphs.generators import family as build_family

        return build_family(self.family, **self.family_params)

    def fault_plan(self):
        """The request's :class:`~repro.faults.FaultPlan`, or ``None``."""
        if self.faults is None:
            return None
        from ..faults import FaultPlan

        return FaultPlan.from_dict(self.faults)


@dataclass(frozen=True)
class ServeResponse:
    """One request's outcome as the daemon reports it.

    ``status`` is :data:`STATUS_OK` (colors attached, validated),
    :data:`STATUS_HALTED` (the instance's crash-stop fault plan
    exhausted its round budget — the per-instance
    :class:`~repro.sim.node.HaltingError`, surfaced without disturbing
    batch siblings), :data:`STATUS_ERROR` (the request itself was
    unservable), :data:`STATUS_REJECTED` (shed by the admission
    controller before any work — ``retry_after_ms`` hints when a
    resubmission is likely to be admitted, derived from observed queue
    latency), or :data:`STATUS_TIMEOUT` (the request's ``deadline_ms``
    expired first).  ``timing`` carries ``queue_ms`` (admission wait),
    ``service_ms`` (resident rounds wall), and ``total_ms``; ``batch``
    carries the continuous-batching provenance (round admitted,
    rounds resident, occupancy at admission).
    """

    status: str
    request_id: str | None = None
    colors: dict[str, int] | None = None
    palette: int | None = None
    rounds: int | None = None
    total_bits: int | None = None
    valid: bool | None = None
    error: dict[str, str] | None = None
    retry_after_ms: float | None = None
    timing: dict[str, float] = field(default_factory=dict)
    batch: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict; inverse of :meth:`from_dict`."""
        out: dict[str, Any] = {
            "protocol": SERVE_PROTOCOL_VERSION,
            "status": self.status,
            "request_id": self.request_id,
            "timing": dict(self.timing),
            "batch": dict(self.batch),
        }
        if self.colors is not None:
            out["colors"] = dict(self.colors)
            out["palette"] = self.palette
        if self.rounds is not None:
            out["rounds"] = self.rounds
        if self.total_bits is not None:
            out["total_bits"] = self.total_bits
        if self.valid is not None:
            out["valid"] = self.valid
        if self.error is not None:
            out["error"] = dict(self.error)
        if self.retry_after_ms is not None:
            out["retry_after_ms"] = float(self.retry_after_ms)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ServeResponse":
        """Parse a response payload (foreign protocol versions rejected)."""
        protocol = data.get("protocol")
        if protocol != SERVE_PROTOCOL_VERSION:
            raise ValueError(
                f"response protocol {protocol!r} != supported "
                f"{SERVE_PROTOCOL_VERSION}"
            )
        return cls(
            status=str(data["status"]),
            request_id=data.get("request_id"),
            colors=(
                None
                if data.get("colors") is None
                else {str(k): int(v) for k, v in data["colors"].items()}
            ),
            palette=data.get("palette"),
            rounds=data.get("rounds"),
            total_bits=data.get("total_bits"),
            valid=data.get("valid"),
            error=(
                None if data.get("error") is None else dict(data["error"])
            ),
            retry_after_ms=(
                None
                if data.get("retry_after_ms") is None
                else float(data["retry_after_ms"])
            ),
            timing={k: float(v) for k, v in (data.get("timing") or {}).items()},
            batch={k: int(v) for k, v in (data.get("batch") or {}).items()},
        )

    def assignment(self) -> dict[int, int]:
        """The coloring with node labels coerced back to integers."""
        if self.colors is None:
            raise ValueError(f"no colors on a {self.status!r} response")
        return {int(k): int(v) for k, v in self.colors.items()}


def error_response(
    exc: BaseException, request_id: str | None = None
) -> ServeResponse:
    """The :data:`STATUS_ERROR` response for an unservable request."""
    return ServeResponse(
        status=STATUS_ERROR,
        request_id=request_id,
        error={"type": type(exc).__name__, "message": str(exc)},
    )


def rejected_response(
    request_id: str | None,
    *,
    retry_after_ms: float,
    reason: str,
) -> ServeResponse:
    """The :data:`STATUS_REJECTED` response the admission controller sheds.

    The server did no work on the request, so resubmitting after
    ``retry_after_ms`` is always safe — :class:`~repro.serve.client.RetryPolicy`
    honors the hint.
    """
    return ServeResponse(
        status=STATUS_REJECTED,
        request_id=request_id,
        error={"type": "Rejected", "message": reason},
        retry_after_ms=float(retry_after_ms),
    )


def timeout_response(
    request_id: str | None,
    *,
    deadline_ms: float,
    where: str,
    timing: dict[str, float] | None = None,
    batch: dict[str, int] | None = None,
) -> ServeResponse:
    """The :data:`STATUS_TIMEOUT` response for an expired deadline.

    ``where`` names the enforcement point (``"queue"``, ``"admission"``,
    or ``"running"``) so clients and the bench can see whether deadlines
    die waiting or mid-run.
    """
    return ServeResponse(
        status=STATUS_TIMEOUT,
        request_id=request_id,
        error={
            "type": "DeadlineExceeded",
            "message": (
                f"deadline_ms={deadline_ms:g} expired in {where}"
            ),
        },
        timing=dict(timing or {}),
        batch=dict(batch or {}),
    )


def encode_line(payload: dict[str, Any]) -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode()


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one protocol line (must be a JSON object)."""
    payload = json.loads(line.decode())
    if not isinstance(payload, dict):
        raise ValueError(f"protocol line must be a JSON object, got {payload!r}")
    return payload
