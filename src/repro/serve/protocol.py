"""The wire protocol of the coloring daemon: requests, responses, framing.

One message per line, each line one JSON object (newline-delimited JSON
— append-friendly, streamable, debuggable with ``nc``).  A client sends
``{"op": "color", ...}`` envelopes carrying a :class:`ServeRequest` and
reads back one :class:`ServeResponse` line per request; the auxiliary
ops (``ping``, ``stats``, ``shutdown``) are single-line exchanges the
daemon answers inline.

A request names its instance *by construction recipe* — graph family +
parameters + seed, optional initial colors, defect budget, optional
:class:`~repro.faults.FaultPlan` dict — never by shipping an adjacency
list.  That keeps request lines tiny under heavy traffic and makes the
served-vs-offline equivalence check exact: anyone can rebuild the same
graph from the recipe and replay the same request set through
:func:`~repro.sim.batch.linial_vectorized_batch` (which is what
``benchmarks/bench_serve.py`` and the test suite do).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

#: Protocol version spoken by this daemon; responses echo it so clients
#: can detect a mismatched server before misreading fields.
SERVE_PROTOCOL_VERSION = 1

#: Request states a response can report.
STATUS_OK = "ok"
STATUS_HALTED = "halted"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class ServeRequest:
    """One coloring request: a graph recipe plus algorithm configuration.

    ``family``/``family_params`` name a generator in
    :mod:`repro.graphs.generators` (e.g. ``ring`` with ``{"n": 16}``);
    ``initial_colors`` optionally overrides the identity initial
    coloring (JSON object keys arrive as strings and are coerced back to
    integer node labels); ``defect`` selects the defect-``d`` schedule;
    ``faults`` is an optional :meth:`~repro.faults.FaultPlan.to_dict`
    payload — crash-stop plans are how the serving tests prove a dead
    instance cannot take its batch siblings down.  ``request_id`` is a
    client-chosen tag echoed verbatim in the response.
    """

    family: str
    family_params: dict[str, Any] = field(default_factory=dict)
    defect: int = 0
    initial_colors: dict[int, int] | None = None
    faults: dict[str, Any] | None = None
    request_id: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.family, str) or not self.family:
            raise ValueError("request needs a non-empty graph family name")
        if self.defect < 0:
            raise ValueError(f"defect must be >= 0, got {self.defect}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict; inverse of :meth:`from_dict`."""
        out: dict[str, Any] = {
            "family": self.family,
            "family_params": dict(self.family_params),
            "defect": self.defect,
        }
        if self.initial_colors is not None:
            out["initial_colors"] = {
                str(k): int(v) for k, v in self.initial_colors.items()
            }
        if self.faults is not None:
            out["faults"] = dict(self.faults)
        if self.request_id is not None:
            out["request_id"] = self.request_id
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ServeRequest":
        """Parse a request payload (unknown keys rejected, keys coerced)."""
        known = {
            "family",
            "family_params",
            "defect",
            "initial_colors",
            "faults",
            "request_id",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown request fields: {sorted(unknown)}")
        init = data.get("initial_colors")
        return cls(
            family=data.get("family", ""),
            family_params=dict(data.get("family_params") or {}),
            defect=int(data.get("defect", 0)),
            initial_colors=(
                None
                if init is None
                else {int(k): int(v) for k, v in init.items()}
            ),
            faults=(
                None if data.get("faults") is None else dict(data["faults"])
            ),
            request_id=data.get("request_id"),
        )

    # ------------------------------------------------------------------
    def build_graph(self):
        """Materialize the request's graph from its family recipe."""
        from ..graphs.generators import family as build_family

        return build_family(self.family, **self.family_params)

    def fault_plan(self):
        """The request's :class:`~repro.faults.FaultPlan`, or ``None``."""
        if self.faults is None:
            return None
        from ..faults import FaultPlan

        return FaultPlan.from_dict(self.faults)


@dataclass(frozen=True)
class ServeResponse:
    """One request's outcome as the daemon reports it.

    ``status`` is :data:`STATUS_OK` (colors attached, validated),
    :data:`STATUS_HALTED` (the instance's crash-stop fault plan
    exhausted its round budget — the per-instance
    :class:`~repro.sim.node.HaltingError`, surfaced without disturbing
    batch siblings), or :data:`STATUS_ERROR` (the request itself was
    unservable).  ``timing`` carries ``queue_ms`` (admission wait),
    ``service_ms`` (resident rounds wall), and ``total_ms``; ``batch``
    carries the continuous-batching provenance (round admitted,
    rounds resident, occupancy at admission).
    """

    status: str
    request_id: str | None = None
    colors: dict[str, int] | None = None
    palette: int | None = None
    rounds: int | None = None
    total_bits: int | None = None
    valid: bool | None = None
    error: dict[str, str] | None = None
    timing: dict[str, float] = field(default_factory=dict)
    batch: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict; inverse of :meth:`from_dict`."""
        out: dict[str, Any] = {
            "protocol": SERVE_PROTOCOL_VERSION,
            "status": self.status,
            "request_id": self.request_id,
            "timing": dict(self.timing),
            "batch": dict(self.batch),
        }
        if self.colors is not None:
            out["colors"] = dict(self.colors)
            out["palette"] = self.palette
        if self.rounds is not None:
            out["rounds"] = self.rounds
        if self.total_bits is not None:
            out["total_bits"] = self.total_bits
        if self.valid is not None:
            out["valid"] = self.valid
        if self.error is not None:
            out["error"] = dict(self.error)
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ServeResponse":
        """Parse a response payload (foreign protocol versions rejected)."""
        protocol = data.get("protocol")
        if protocol != SERVE_PROTOCOL_VERSION:
            raise ValueError(
                f"response protocol {protocol!r} != supported "
                f"{SERVE_PROTOCOL_VERSION}"
            )
        return cls(
            status=str(data["status"]),
            request_id=data.get("request_id"),
            colors=(
                None
                if data.get("colors") is None
                else {str(k): int(v) for k, v in data["colors"].items()}
            ),
            palette=data.get("palette"),
            rounds=data.get("rounds"),
            total_bits=data.get("total_bits"),
            valid=data.get("valid"),
            error=(
                None if data.get("error") is None else dict(data["error"])
            ),
            timing={k: float(v) for k, v in (data.get("timing") or {}).items()},
            batch={k: int(v) for k, v in (data.get("batch") or {}).items()},
        )

    def assignment(self) -> dict[int, int]:
        """The coloring with node labels coerced back to integers."""
        if self.colors is None:
            raise ValueError(f"no colors on a {self.status!r} response")
        return {int(k): int(v) for k, v in self.colors.items()}


def error_response(
    exc: BaseException, request_id: str | None = None
) -> ServeResponse:
    """The :data:`STATUS_ERROR` response for an unservable request."""
    return ServeResponse(
        status=STATUS_ERROR,
        request_id=request_id,
        error={"type": type(exc).__name__, "message": str(exc)},
    )


def encode_line(payload: dict[str, Any]) -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode()


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one protocol line (must be a JSON object)."""
    payload = json.loads(line.decode())
    if not isinstance(payload, dict):
        raise ValueError(f"protocol line must be a JSON object, got {payload!r}")
    return payload
