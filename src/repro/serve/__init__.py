"""Serving: a long-lived coloring daemon with continuous batching.

The reproduction's execution stack ends here: below this package,
:mod:`repro.sim.batch` can pack any set of Linial instances into
block-diagonal rounds with bit-identical per-instance results; this
package turns that capability into a *service*.  A
:class:`ColoringServer` accepts newline-delimited JSON requests over a
local TCP socket; its :class:`ContinuousBatcher` packs admitted requests
into shared rounds, evicts each instance the round it finishes, and
refills the freed slots from a FIFO queue between rounds — continuous
batching, the same scheduling discipline modern inference servers use,
applied to distributed graph coloring.

The serving contract, pinned by ``tests/test_serve.py`` and re-measured
by ``benchmarks/bench_serve.py``:

* every served coloring is bit-identical to what the offline batched
  engine (:func:`~repro.sim.batch.linial_vectorized_batch`) produces for
  the same request, regardless of batch composition or admission round;
* every ``ok`` response validates through :mod:`repro.core.validate`;
* a request whose crash-stop :class:`~repro.faults.FaultPlan` halts is
  evicted as ``status="halted"`` while its batch siblings keep serving;
* under overload the daemon degrades gracefully instead of collapsing:
  a bounded queue (``max_queue``) sheds excess load as
  ``status="rejected"`` with a ``retry_after_ms`` hint, an expired
  per-request ``deadline_ms`` resolves as ``status="timeout"`` with the
  doomed instance evicted mid-run, shedding never perturbs an admitted
  sibling's coloring, and shutdown drains — in-flight work finishes or
  times out, and anything still pending fails with a structured error
  rather than hanging its awaiter.

Quick start::

    server = ColoringServer(ServeConfig(max_batch=32))
    await server.start()
    client = ServeClient("127.0.0.1", server.port)
    response = await client.color(synth_requests(seed=0, count=1)[0])
    await server.stop()

Or from a shell: ``repro-cli serve --port 7341``.
"""

from .client import (
    RetryPolicy,
    ServeClient,
    TrafficReport,
    fire_traffic,
    synth_requests,
)
from .daemon import MAX_LINE_BYTES, ColoringServer
from .protocol import (
    OVERLOAD_STATUSES,
    SERVE_PROTOCOL_VERSION,
    STATUS_ERROR,
    STATUS_HALTED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    ServeRequest,
    ServeResponse,
    decode_line,
    encode_line,
    error_response,
    rejected_response,
    timeout_response,
)
from .scheduler import SHED_POLICIES, ContinuousBatcher, ServeConfig

__all__ = [
    "ColoringServer",
    "ContinuousBatcher",
    "MAX_LINE_BYTES",
    "OVERLOAD_STATUSES",
    "RetryPolicy",
    "SERVE_PROTOCOL_VERSION",
    "SHED_POLICIES",
    "STATUS_ERROR",
    "STATUS_HALTED",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_TIMEOUT",
    "ServeClient",
    "ServeConfig",
    "ServeRequest",
    "ServeResponse",
    "TrafficReport",
    "decode_line",
    "encode_line",
    "error_response",
    "fire_traffic",
    "rejected_response",
    "synth_requests",
    "timeout_response",
]
