"""Serving: a long-lived coloring daemon with continuous batching.

The reproduction's execution stack ends here: below this package,
:mod:`repro.sim.batch` can pack any set of Linial instances into
block-diagonal rounds with bit-identical per-instance results; this
package turns that capability into a *service*.  A
:class:`ColoringServer` accepts newline-delimited JSON requests over a
local TCP socket; its :class:`ContinuousBatcher` packs admitted requests
into shared rounds, evicts each instance the round it finishes, and
refills the freed slots from a FIFO queue between rounds — continuous
batching, the same scheduling discipline modern inference servers use,
applied to distributed graph coloring.

The serving contract, pinned by ``tests/test_serve.py`` and re-measured
by ``benchmarks/bench_serve.py``:

* every served coloring is bit-identical to what the offline batched
  engine (:func:`~repro.sim.batch.linial_vectorized_batch`) produces for
  the same request, regardless of batch composition or admission round;
* every ``ok`` response validates through :mod:`repro.core.validate`;
* a request whose crash-stop :class:`~repro.faults.FaultPlan` halts is
  evicted as ``status="halted"`` while its batch siblings keep serving.

Quick start::

    server = ColoringServer(ServeConfig(max_batch=32))
    await server.start()
    client = ServeClient("127.0.0.1", server.port)
    response = await client.color(synth_requests(seed=0, count=1)[0])
    await server.stop()

Or from a shell: ``repro-cli serve --port 7341``.
"""

from .client import ServeClient, TrafficReport, fire_traffic, synth_requests
from .daemon import MAX_LINE_BYTES, ColoringServer
from .protocol import (
    SERVE_PROTOCOL_VERSION,
    STATUS_ERROR,
    STATUS_HALTED,
    STATUS_OK,
    ServeRequest,
    ServeResponse,
    decode_line,
    encode_line,
    error_response,
)
from .scheduler import ContinuousBatcher, ServeConfig

__all__ = [
    "ColoringServer",
    "ContinuousBatcher",
    "MAX_LINE_BYTES",
    "SERVE_PROTOCOL_VERSION",
    "STATUS_ERROR",
    "STATUS_HALTED",
    "STATUS_OK",
    "ServeClient",
    "ServeConfig",
    "ServeRequest",
    "ServeResponse",
    "TrafficReport",
    "decode_line",
    "encode_line",
    "error_response",
    "fire_traffic",
    "synth_requests",
]
