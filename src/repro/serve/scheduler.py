"""Continuous-batching scheduler: FIFO admission, per-round eviction.

This is the serving half of the tentpole: the transport
(:mod:`repro.serve.daemon`) turns socket lines into
:class:`~repro.serve.protocol.ServeRequest` objects and awaits futures;
*this* module owns the round loop.  A :class:`ContinuousBatcher` keeps a
FIFO queue of submitted requests and a
:class:`~repro.sim.batch.LinialBatchStepper`; each :meth:`tick` admits
queued requests into free batch slots, steps one synchronous round over
the packed membership, and resolves the futures of every instance that
finished that round — so slots free the moment an instance completes
(eviction via the per-instance termination masks) and refill from the
queue before the next round, never waiting for batch-mates to drain.

Correctness is inherited, not re-argued: the stepper guarantees each
instance's outcome is bit-identical to its standalone
:func:`~repro.sim.vectorized.linial_vectorized` run under *any*
admission/eviction interleaving, so the scheduler is free to pack purely
for throughput.  A request whose crash-stop
:class:`~repro.faults.FaultPlan` exhausts its round budget resolves as
``status="halted"`` and is evicted like any other finish — its batch
siblings keep serving, which ``tests/test_serve.py`` pins explicitly.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..core.validate import validate_defective_coloring, validate_proper_coloring
from ..obs import LatencyTracker, OccupancyTracker, OutcomeTracker, RunRecorder
from ..obs.latency import quantile
from ..sim import HaltingError, LinialBatchStepper, make_batch_instance, require
from ..sim.batch import BatchInstance
from .protocol import (
    STATUS_ERROR,
    STATUS_HALTED,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    ServeRequest,
    ServeResponse,
    error_response,
    rejected_response,
    timeout_response,
)

#: Queue-shedding policies: ``newest`` rejects the arriving request
#: (classic tail drop — FIFO latency stays honest), ``oldest`` rejects
#: the queue head to admit the newcomer (LIFO-flavored — under overload
#: the freshest requests are the ones whose clients are still waiting).
#: Either way, queued requests whose deadlines already expired are timed
#: out *first*; shedding only ever touches still-viable work.
SHED_POLICIES = ("newest", "oldest")


@dataclass(frozen=True)
class ServeConfig:
    """Scheduler knobs for a serving run.

    ``max_batch`` caps the stepper's occupancy (how many instances pack
    into one block-diagonal round); ``validate`` re-checks every served
    coloring through :mod:`repro.core.validate` before responding (the
    daemon's output contract — leave it on outside microbenchmarks);
    ``record_jsonl`` appends one per-request
    :class:`~repro.obs.RunRecord` row to that path as requests finish.
    ``backend`` must name a registry backend with ``supports_serve``
    (the batcher resolves it through :func:`repro.sim.backends.require`
    at construction, so a non-servable backend fails fast, not mid-
    traffic).

    The overload knobs: ``max_queue`` bounds the admission queue
    (``None`` keeps the historical unbounded FIFO; under overload an
    unbounded queue converts excess offered load into unbounded latency
    for *everyone*, the collapse ``benchmarks/bench_serve.py``'s
    overload cell measures).  When the bound is hit, ``shed_policy``
    picks the victim (see :data:`SHED_POLICIES`) and the shed request
    answers ``status="rejected"`` with a ``retry_after_ms`` hint derived
    from observed queue latency (floored at
    ``retry_after_floor_ms``).  ``drain_timeout_s`` bounds the graceful
    drain :meth:`ContinuousBatcher.drain` performs at shutdown before
    failing whatever is still pending with a structured error.
    """

    max_batch: int = 64
    validate: bool = True
    record_jsonl: str | Path | None = None
    backend: str = "batched"
    max_queue: int | None = None
    shed_policy: str = "newest"
    retry_after_floor_ms: float = 10.0
    drain_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_queue is not None and self.max_queue < 1:
            raise ValueError(
                f"max_queue must be >= 1 (or None for unbounded), "
                f"got {self.max_queue}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {self.shed_policy!r}"
            )
        if self.retry_after_floor_ms <= 0:
            raise ValueError(
                f"retry_after_floor_ms must be > 0, "
                f"got {self.retry_after_floor_ms}"
            )
        if self.drain_timeout_s < 0:
            raise ValueError(
                f"drain_timeout_s must be >= 0, got {self.drain_timeout_s}"
            )


class _Ticket:
    """One in-flight request: its future, clocks, and built instance."""

    __slots__ = (
        "request",
        "future",
        "graph",
        "instance",
        "t_submitted",
        "t_admitted",
        "admitted_round",
        "deadline",
    )

    def __init__(
        self,
        request: ServeRequest,
        future: "asyncio.Future[ServeResponse]",
        graph: Any,
        instance: BatchInstance,
    ) -> None:
        self.request = request
        self.future = future
        self.graph = graph
        self.instance = instance
        self.t_submitted = time.perf_counter()
        self.t_admitted: float | None = None
        self.admitted_round: int | None = None
        #: Absolute ``perf_counter`` cutoff, or ``None`` for no deadline.
        self.deadline: float | None = (
            self.t_submitted + request.deadline_ms / 1000.0
            if request.deadline_ms is not None
            else None
        )

    def expired(self, now: float | None = None) -> bool:
        """Whether the request's deadline has passed."""
        if self.deadline is None:
            return False
        return (time.perf_counter() if now is None else now) >= self.deadline

    def timing(self, now: float | None = None) -> dict[str, float]:
        """Queue/total wall split at ``now`` (for timeout responses)."""
        now = time.perf_counter() if now is None else now
        t_admitted = self.t_admitted
        out = {"total_ms": (now - self.t_submitted) * 1000.0}
        if t_admitted is not None:
            out["queue_ms"] = (t_admitted - self.t_submitted) * 1000.0
            out["service_ms"] = (now - t_admitted) * 1000.0
        else:
            out["queue_ms"] = out["total_ms"]
        return out


class ContinuousBatcher:
    """FIFO queue + round-stepped batch: the continuous-batching loop.

    :meth:`submit` is the only producer API (builds the instance, parks
    a ticket, returns a future); :meth:`run` is the consumer loop the
    daemon spawns as a task — it ticks while work exists and sleeps on
    an event otherwise.  :meth:`stats` snapshots queue/batch occupancy
    and the three latency dimensions (queue wait, service, total) for
    the ``stats`` protocol op and the benchmark harness.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.backend = require(
            self.config.backend, algorithm="linial", serve=True
        )
        self.stepper = LinialBatchStepper()
        self._queue: deque[_Ticket] = deque()
        self._resident: dict[int, _Ticket] = {}
        self._wakeup = asyncio.Event()
        self._stopping = False
        self._draining = False
        #: The exception that killed the scheduler loop, if any; set by
        #: :meth:`run` *after* every pending future was failed with a
        #: structured error (the no-hanging-awaiters contract).
        self.crashed: BaseException | None = None
        self.queue_latency = LatencyTracker()
        self.service_latency = LatencyTracker()
        self.total_latency = LatencyTracker()
        self.occupancy_stats = OccupancyTracker()
        self.outcomes = OutcomeTracker()
        self.served = 0
        self.halted = 0
        self.errors = 0
        self.rejected = 0
        self.timed_out = 0

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests admitted to the queue but not yet packed."""
        return len(self._queue)

    @property
    def has_work(self) -> bool:
        """Whether a tick would do anything."""
        return bool(self._queue) or not self.stepper.drained

    # ------------------------------------------------------------------
    def submit(self, request: ServeRequest) -> "asyncio.Future[ServeResponse]":
        """Enqueue one request; the future resolves when it finishes.

        The graph/schedule/fault-plan are materialized here so a
        malformed request fails fast with ``status="error"`` instead of
        occupying a queue slot.  This is also the admission controller:
        a draining or crashed scheduler answers immediately, and with
        ``max_queue`` configured a full queue sheds per ``shed_policy``
        — the shed request resolves ``status="rejected"`` with a
        ``retry_after_ms`` hint, never parking an awaiter on work the
        server will not do.  Order matters: the shed decision runs
        *before* materialization, because rejection has to stay O(1) —
        under a real overload the daemon spends most arrivals shedding,
        and paying graph construction for a request the queue bound
        turns away would let the shed path itself starve the round loop
        (a request shed this way is never inspected, so even a
        malformed one resolves ``rejected``, not ``error``).
        """
        future: asyncio.Future[ServeResponse] = (
            asyncio.get_running_loop().create_future()
        )
        if self.crashed is not None:
            self.errors += 1
            self.outcomes.record(STATUS_ERROR)
            future.set_result(
                ServeResponse(
                    status=STATUS_ERROR,
                    request_id=request.request_id,
                    error={
                        "type": "SchedulerCrashed",
                        "message": (
                            "scheduler loop died: "
                            f"{type(self.crashed).__name__}: {self.crashed}"
                        ),
                    },
                )
            )
            return future
        if self._draining or self._stopping:
            self.rejected += 1
            self.outcomes.record(STATUS_REJECTED)
            future.set_result(
                rejected_response(
                    request.request_id,
                    retry_after_ms=self.retry_after_ms(),
                    reason="daemon is draining; not accepting new work",
                )
            )
            return future
        shed_full = False
        if (
            self.config.max_queue is not None
            and len(self._queue) >= self.config.max_queue
        ):
            # Deadline-aware first: queued requests that can no longer
            # meet their deadlines are dead weight, time them out before
            # shedding anything still viable.
            self._expire_queued()
            shed_full = len(self._queue) >= self.config.max_queue
        if shed_full and self.config.shed_policy != "oldest":
            # O(1) tail drop: the arrival is turned away un-inspected,
            # before any graph is built.
            self.rejected += 1
            self.outcomes.record(STATUS_REJECTED)
            future.set_result(
                rejected_response(
                    request.request_id,
                    retry_after_ms=self.retry_after_ms(),
                    reason="shed: queue full (newest)",
                )
            )
            return future
        try:
            graph = request.build_graph()
            recorder = None
            if self.config.record_jsonl is not None:
                recorder = RunRecorder(
                    engine=self.backend.engine,
                    algorithm="linial_vectorized",
                    jsonl_path=self.config.record_jsonl,
                )
            instance = make_batch_instance(
                graph,
                initial_colors=request.initial_colors,
                defect=request.defect,
                faults=request.fault_plan(),
                recorder=recorder,
            )
        except Exception as exc:  # noqa: BLE001 — becomes the error response
            self.errors += 1
            self.outcomes.record(STATUS_ERROR)
            future.set_result(error_response(exc, request.request_id))
            return future
        ticket = _Ticket(request, future, graph, instance)
        if shed_full:
            # drop-head keeps the newcomer: the queue head paid its
            # build for nothing, but "oldest" buys freshness, not speed
            victim = self._queue.popleft()
            self._reject(victim, reason="shed: queue full (oldest)")
        self._queue.append(ticket)
        self._wakeup.set()
        return future

    # ------------------------------------------------------------------
    def retry_after_ms(self) -> float:
        """The rejection hint: how long a shed client should back off.

        Derived from observed queue latency — the median of the most
        recent admission waits (window of 256) is the best available
        estimate of how long the queue currently takes to turn over —
        floored at ``retry_after_floor_ms`` so a cold daemon never
        invites an instant retry storm.
        """
        samples = self.queue_latency.samples[-256:]
        hint = quantile(samples, 0.5) * 1000.0 if samples else 0.0
        return max(self.config.retry_after_floor_ms, hint)

    def _reject(self, ticket: _Ticket, *, reason: str) -> None:
        """Resolve a shed ticket as ``rejected`` (no work was done)."""
        self.rejected += 1
        self.outcomes.record(STATUS_REJECTED)
        if not ticket.future.done():
            ticket.future.set_result(
                rejected_response(
                    ticket.request.request_id,
                    retry_after_ms=self.retry_after_ms(),
                    reason=reason,
                )
            )

    def _timeout(self, ticket: _Ticket, *, where: str) -> None:
        """Resolve an expired ticket as ``timeout``."""
        self.timed_out += 1
        self.outcomes.record(STATUS_TIMEOUT)
        self.total_latency.add(time.perf_counter() - ticket.t_submitted)
        if not ticket.future.done():
            ticket.future.set_result(
                timeout_response(
                    ticket.request.request_id,
                    deadline_ms=ticket.request.deadline_ms or 0.0,
                    where=where,
                    timing=ticket.timing(),
                    batch=(
                        {"admitted_round": ticket.admitted_round}
                        if ticket.admitted_round is not None
                        else None
                    ),
                )
            )

    def _expire_queued(self) -> None:
        """Time out every queued ticket whose deadline already passed."""
        if not any(t.deadline is not None for t in self._queue):
            return
        now = time.perf_counter()
        keep: deque[_Ticket] = deque()
        for ticket in self._queue:
            if ticket.expired(now):
                self._timeout(ticket, where="queue")
            else:
                keep.append(ticket)
        self._queue = keep

    # ------------------------------------------------------------------
    def _admit_waiting(self) -> None:
        """Refill free batch slots from the queue head (FIFO).

        The packing-time deadline check lives here: a ticket whose
        deadline expired while it waited resolves as ``timeout`` instead
        of being packed — admitting it would burn a batch slot on an
        answer its client has already given up on.
        """
        while self._queue and self.stepper.occupancy < self.config.max_batch:
            ticket = self._queue.popleft()
            if ticket.expired():
                self._timeout(ticket, where="admission")
                continue
            ticket.t_admitted = time.perf_counter()
            ticket.admitted_round = self.stepper.round_index
            self.stepper.admit(ticket.instance)
            self._resident[ticket.instance.uid] = ticket

    def _evict_expired_residents(self) -> None:
        """Between-rounds deadline sweep over the resident set.

        An instance that finished *this* round has already been resolved
        (finish wins over a same-round deadline); anything still
        resident past its deadline is evicted from the stepper mid-run —
        the block-diagonal packing guarantees removing it cannot perturb
        a sibling — and resolved as ``timeout``.
        """
        expired = [
            t for t in self._resident.values() if t.expired()
        ]
        for ticket in expired:
            self.stepper.evict(ticket.instance)
            del self._resident[ticket.instance.uid]
            self._timeout(ticket, where="running")

    def _resolve(self, instance: BatchInstance) -> None:
        """Build and deliver the response for one finished instance."""
        ticket = self._resident.pop(instance.uid)
        t_done = time.perf_counter()
        t_admitted = ticket.t_admitted or t_done
        queue_s = t_admitted - ticket.t_submitted
        service_s = t_done - t_admitted
        total_s = t_done - ticket.t_submitted
        self.queue_latency.add(queue_s)
        self.service_latency.add(service_s)
        self.total_latency.add(total_s)
        timing = {
            "queue_ms": queue_s * 1000.0,
            "service_ms": service_s * 1000.0,
            "total_ms": total_s * 1000.0,
        }
        batch = {
            "admitted_round": ticket.admitted_round or 0,
            "rounds_resident": instance.rounds_resident,
        }
        outcome = instance.outcome()
        if isinstance(outcome, HaltingError):
            self.halted += 1
            self.outcomes.record(STATUS_HALTED)
            response = ServeResponse(
                status=STATUS_HALTED,
                request_id=ticket.request.request_id,
                error={"type": "HaltingError", "message": str(outcome)},
                timing=timing,
                batch=batch,
            )
        elif isinstance(outcome, BaseException):
            self.errors += 1
            self.outcomes.record(STATUS_ERROR)
            response = ServeResponse(
                status=STATUS_ERROR,
                request_id=ticket.request.request_id,
                error={"type": type(outcome).__name__, "message": str(outcome)},
                timing=timing,
                batch=batch,
            )
        else:
            result, metrics, palette = outcome
            valid = None
            if self.config.validate:
                defect = ticket.request.defect
                report = (
                    validate_proper_coloring(ticket.graph, result)
                    if defect == 0
                    else validate_defective_coloring(ticket.graph, result, defect)
                )
                valid = bool(report.ok)
            self.served += 1
            self.outcomes.record(STATUS_OK)
            response = ServeResponse(
                status=STATUS_OK,
                request_id=ticket.request.request_id,
                colors={str(v): int(c) for v, c in result.assignment.items()},
                palette=int(palette),
                rounds=int(metrics.rounds),
                total_bits=int(metrics.total_bits),
                valid=valid,
                timing=timing,
                batch=batch,
            )
        if not ticket.future.done():
            ticket.future.set_result(response)

    # ------------------------------------------------------------------
    def tick(self) -> bool:
        """One scheduler beat: expire, admit, step one round, resolve.

        Returns whether any work happened (so the run loop knows when to
        park on the wakeup event instead of spinning).  Deadline order
        matters: queued expiries are timed out before packing, the round
        steps, finished instances resolve (a finish beats a same-round
        deadline), and only then are still-resident expired instances
        evicted mid-run.
        """
        self._expire_queued()
        self._admit_waiting()
        if self.stepper.drained:
            return False
        report = self.stepper.step()
        for instance in report.finished:
            self._resolve(instance)
        self._evict_expired_residents()
        self.occupancy_stats.on_round(self.queue_depth, self.stepper.occupancy)
        return True

    async def run(self) -> None:
        """The scheduler loop: tick while work exists, park otherwise.

        The ``sleep(0)`` between ticks is what makes this *continuous*
        batching under asyncio — it yields to the event loop so new
        connections can submit between rounds, letting their requests
        catch slots freed by that round's evictions.

        If a tick raises, every pending future (queued and resident) is
        failed with a structured ``SchedulerCrashed`` error response
        *before* the exception propagates — an awaiter must never hang
        on a scheduler that is no longer running.
        """
        try:
            while not self._stopping:
                if self.has_work:
                    self.tick()
                    await asyncio.sleep(0)
                else:
                    self._wakeup.clear()
                    if self._stopping:
                        break
                    await self._wakeup.wait()
        except BaseException as exc:
            self.crashed = exc
            self._fail_all_pending(
                "SchedulerCrashed",
                f"scheduler loop died: {type(exc).__name__}: {exc}",
            )
            raise

    def stop(self) -> None:
        """Ask :meth:`run` to exit after the current tick."""
        self._stopping = True
        self._wakeup.set()

    # ------------------------------------------------------------------
    async def drain(self, timeout_s: float | None = None) -> dict[str, int]:
        """Graceful shutdown: stop accepting, finish or fail in-flight work.

        Flips the batcher into draining mode (new :meth:`submit` calls
        answer ``rejected`` immediately), then waits up to ``timeout_s``
        (default ``config.drain_timeout_s``) for the scheduler loop —
        which must still be running — to work off the queue and the
        resident batch.  Whatever is still pending at the deadline is
        failed with a structured ``DrainTimeout`` error response; either
        way, no awaiter is left hanging.  Returns the drain accounting
        (``finished`` work completed during the drain, ``abandoned``
        futures failed at the deadline).
        """
        self._draining = True
        self._wakeup.set()
        if timeout_s is None:
            timeout_s = self.config.drain_timeout_s
        deadline = time.perf_counter() + timeout_s
        before = len(self._queue) + len(self._resident)
        while (
            self.has_work
            and self.crashed is None
            and time.perf_counter() < deadline
        ):
            await asyncio.sleep(0)
        abandoned = self._fail_all_pending(
            "DrainTimeout",
            f"daemon drained for {timeout_s:g}s; request abandoned",
        )
        return {"pending_at_drain": before, "abandoned": abandoned}

    def _fail_all_pending(self, error_type: str, message: str) -> int:
        """Fail every queued/resident future with a structured error.

        The no-hanging-awaiters backstop shared by the crash path and
        the drain deadline; evicts resident instances from the stepper
        so a later restart of the loop does not step zombie work.
        Returns how many futures were failed.
        """
        failed = 0
        pending = list(self._queue) + list(self._resident.values())
        self._queue.clear()
        for ticket in self._resident.values():
            self.stepper.evict(ticket.instance)
        self._resident.clear()
        for ticket in pending:
            if ticket.future.done():
                continue
            failed += 1
            self.errors += 1
            self.outcomes.record(STATUS_ERROR)
            ticket.future.set_result(
                ServeResponse(
                    status=STATUS_ERROR,
                    request_id=ticket.request.request_id,
                    error={"type": error_type, "message": message},
                    timing=ticket.timing(),
                )
            )
        return failed

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Snapshot of counters, occupancy, and latency summaries."""
        return {
            "backend": self.backend.name,
            "served": self.served,
            "halted": self.halted,
            "errors": self.errors,
            "rejected": self.rejected,
            "timed_out": self.timed_out,
            "queue_depth": self.queue_depth,
            "occupancy": self.stepper.occupancy,
            "round_index": self.stepper.round_index,
            "max_batch": self.config.max_batch,
            "max_queue": self.config.max_queue,
            "shed_policy": self.config.shed_policy,
            "draining": self._draining,
            "crashed": (
                None if self.crashed is None else type(self.crashed).__name__
            ),
            "retry_after_ms": self.retry_after_ms(),
            "outcomes": self.outcomes.summary(),
            "occupancy_stats": self.occupancy_stats.summary(),
            "latency": {
                "queue": self.queue_latency.summary(),
                "service": self.service_latency.summary(),
                "total": self.total_latency.summary(),
            },
        }
