"""Continuous-batching scheduler: FIFO admission, per-round eviction.

This is the serving half of the tentpole: the transport
(:mod:`repro.serve.daemon`) turns socket lines into
:class:`~repro.serve.protocol.ServeRequest` objects and awaits futures;
*this* module owns the round loop.  A :class:`ContinuousBatcher` keeps a
FIFO queue of submitted requests and a
:class:`~repro.sim.batch.LinialBatchStepper`; each :meth:`tick` admits
queued requests into free batch slots, steps one synchronous round over
the packed membership, and resolves the futures of every instance that
finished that round — so slots free the moment an instance completes
(eviction via the per-instance termination masks) and refill from the
queue before the next round, never waiting for batch-mates to drain.

Correctness is inherited, not re-argued: the stepper guarantees each
instance's outcome is bit-identical to its standalone
:func:`~repro.sim.vectorized.linial_vectorized` run under *any*
admission/eviction interleaving, so the scheduler is free to pack purely
for throughput.  A request whose crash-stop
:class:`~repro.faults.FaultPlan` exhausts its round budget resolves as
``status="halted"`` and is evicted like any other finish — its batch
siblings keep serving, which ``tests/test_serve.py`` pins explicitly.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..core.validate import validate_defective_coloring, validate_proper_coloring
from ..obs import LatencyTracker, OccupancyTracker, RunRecorder
from ..sim import HaltingError, LinialBatchStepper, make_batch_instance, require
from ..sim.batch import BatchInstance
from .protocol import (
    STATUS_ERROR,
    STATUS_HALTED,
    STATUS_OK,
    ServeRequest,
    ServeResponse,
    error_response,
)


@dataclass(frozen=True)
class ServeConfig:
    """Scheduler knobs for a serving run.

    ``max_batch`` caps the stepper's occupancy (how many instances pack
    into one block-diagonal round); ``validate`` re-checks every served
    coloring through :mod:`repro.core.validate` before responding (the
    daemon's output contract — leave it on outside microbenchmarks);
    ``record_jsonl`` appends one per-request
    :class:`~repro.obs.RunRecord` row to that path as requests finish.
    ``backend`` must name a registry backend with ``supports_serve``
    (the batcher resolves it through :func:`repro.sim.backends.require`
    at construction, so a non-servable backend fails fast, not mid-
    traffic).
    """

    max_batch: int = 64
    validate: bool = True
    record_jsonl: str | Path | None = None
    backend: str = "batched"

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")


class _Ticket:
    """One in-flight request: its future, clocks, and built instance."""

    __slots__ = (
        "request",
        "future",
        "graph",
        "instance",
        "t_submitted",
        "t_admitted",
        "admitted_round",
    )

    def __init__(
        self,
        request: ServeRequest,
        future: "asyncio.Future[ServeResponse]",
        graph: Any,
        instance: BatchInstance,
    ) -> None:
        self.request = request
        self.future = future
        self.graph = graph
        self.instance = instance
        self.t_submitted = time.perf_counter()
        self.t_admitted: float | None = None
        self.admitted_round: int | None = None


class ContinuousBatcher:
    """FIFO queue + round-stepped batch: the continuous-batching loop.

    :meth:`submit` is the only producer API (builds the instance, parks
    a ticket, returns a future); :meth:`run` is the consumer loop the
    daemon spawns as a task — it ticks while work exists and sleeps on
    an event otherwise.  :meth:`stats` snapshots queue/batch occupancy
    and the three latency dimensions (queue wait, service, total) for
    the ``stats`` protocol op and the benchmark harness.
    """

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        self.backend = require(
            self.config.backend, algorithm="linial", serve=True
        )
        self.stepper = LinialBatchStepper()
        self._queue: deque[_Ticket] = deque()
        self._resident: dict[int, _Ticket] = {}
        self._wakeup = asyncio.Event()
        self._stopping = False
        self.queue_latency = LatencyTracker()
        self.service_latency = LatencyTracker()
        self.total_latency = LatencyTracker()
        self.occupancy_stats = OccupancyTracker()
        self.served = 0
        self.halted = 0
        self.errors = 0

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests admitted to the queue but not yet packed."""
        return len(self._queue)

    @property
    def has_work(self) -> bool:
        """Whether a tick would do anything."""
        return bool(self._queue) or not self.stepper.drained

    # ------------------------------------------------------------------
    def submit(self, request: ServeRequest) -> "asyncio.Future[ServeResponse]":
        """Enqueue one request; the future resolves when it finishes.

        The graph/schedule/fault-plan are materialized here so a
        malformed request fails fast with ``status="error"`` instead of
        occupying a queue slot; construction cost stays off the round
        loop's critical path.
        """
        future: asyncio.Future[ServeResponse] = (
            asyncio.get_running_loop().create_future()
        )
        try:
            graph = request.build_graph()
            recorder = None
            if self.config.record_jsonl is not None:
                recorder = RunRecorder(
                    engine=self.backend.engine,
                    algorithm="linial_vectorized",
                    jsonl_path=self.config.record_jsonl,
                )
            instance = make_batch_instance(
                graph,
                initial_colors=request.initial_colors,
                defect=request.defect,
                faults=request.fault_plan(),
                recorder=recorder,
            )
        except Exception as exc:  # noqa: BLE001 — becomes the error response
            self.errors += 1
            future.set_result(error_response(exc, request.request_id))
            return future
        self._queue.append(_Ticket(request, future, graph, instance))
        self._wakeup.set()
        return future

    # ------------------------------------------------------------------
    def _admit_waiting(self) -> None:
        """Refill free batch slots from the queue head (FIFO)."""
        while self._queue and self.stepper.occupancy < self.config.max_batch:
            ticket = self._queue.popleft()
            ticket.t_admitted = time.perf_counter()
            ticket.admitted_round = self.stepper.round_index
            self.stepper.admit(ticket.instance)
            self._resident[ticket.instance.uid] = ticket

    def _resolve(self, instance: BatchInstance) -> None:
        """Build and deliver the response for one finished instance."""
        ticket = self._resident.pop(instance.uid)
        t_done = time.perf_counter()
        t_admitted = ticket.t_admitted or t_done
        queue_s = t_admitted - ticket.t_submitted
        service_s = t_done - t_admitted
        total_s = t_done - ticket.t_submitted
        self.queue_latency.add(queue_s)
        self.service_latency.add(service_s)
        self.total_latency.add(total_s)
        timing = {
            "queue_ms": queue_s * 1000.0,
            "service_ms": service_s * 1000.0,
            "total_ms": total_s * 1000.0,
        }
        batch = {
            "admitted_round": ticket.admitted_round or 0,
            "rounds_resident": instance.rounds_resident,
        }
        outcome = instance.outcome()
        if isinstance(outcome, HaltingError):
            self.halted += 1
            response = ServeResponse(
                status=STATUS_HALTED,
                request_id=ticket.request.request_id,
                error={"type": "HaltingError", "message": str(outcome)},
                timing=timing,
                batch=batch,
            )
        elif isinstance(outcome, BaseException):
            self.errors += 1
            response = ServeResponse(
                status=STATUS_ERROR,
                request_id=ticket.request.request_id,
                error={"type": type(outcome).__name__, "message": str(outcome)},
                timing=timing,
                batch=batch,
            )
        else:
            result, metrics, palette = outcome
            valid = None
            if self.config.validate:
                defect = ticket.request.defect
                report = (
                    validate_proper_coloring(ticket.graph, result)
                    if defect == 0
                    else validate_defective_coloring(ticket.graph, result, defect)
                )
                valid = bool(report.ok)
            self.served += 1
            response = ServeResponse(
                status=STATUS_OK,
                request_id=ticket.request.request_id,
                colors={str(v): int(c) for v, c in result.assignment.items()},
                palette=int(palette),
                rounds=int(metrics.rounds),
                total_bits=int(metrics.total_bits),
                valid=valid,
                timing=timing,
                batch=batch,
            )
        if not ticket.future.done():
            ticket.future.set_result(response)

    # ------------------------------------------------------------------
    def tick(self) -> bool:
        """One scheduler beat: admit, step one round, resolve finishes.

        Returns whether any work happened (so the run loop knows when to
        park on the wakeup event instead of spinning).
        """
        self._admit_waiting()
        if self.stepper.drained:
            return False
        report = self.stepper.step()
        for instance in report.finished:
            self._resolve(instance)
        self.occupancy_stats.on_round(self.queue_depth, self.stepper.occupancy)
        return True

    async def run(self) -> None:
        """The scheduler loop: tick while work exists, park otherwise.

        The ``sleep(0)`` between ticks is what makes this *continuous*
        batching under asyncio — it yields to the event loop so new
        connections can submit between rounds, letting their requests
        catch slots freed by that round's evictions.
        """
        while not self._stopping:
            if self.has_work:
                self.tick()
                await asyncio.sleep(0)
            else:
                self._wakeup.clear()
                if self._stopping:
                    break
                await self._wakeup.wait()

    def stop(self) -> None:
        """Ask :meth:`run` to exit after the current tick."""
        self._stopping = True
        self._wakeup.set()

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Snapshot of counters, occupancy, and latency summaries."""
        return {
            "backend": self.backend.name,
            "served": self.served,
            "halted": self.halted,
            "errors": self.errors,
            "queue_depth": self.queue_depth,
            "occupancy": self.stepper.occupancy,
            "round_index": self.stepper.round_index,
            "max_batch": self.config.max_batch,
            "occupancy_stats": self.occupancy_stats.summary(),
            "latency": {
                "queue": self.queue_latency.summary(),
                "service": self.service_latency.summary(),
                "total": self.total_latency.summary(),
            },
        }
