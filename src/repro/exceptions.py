"""Typed exceptions for the library's failure modes.

All subclass the builtin the original code raised (``ValueError`` /
``RuntimeError``), so callers that caught broadly keep working while new
callers can discriminate:

* :class:`ConditionViolation` — a paper precondition (Eq. 1/2/3, list
  sizes, palette bounds) does not hold for the given input.
* :class:`ScheduleError` — a schedule/driver invariant failed at run time
  (greedy stuck, potential descent diverged, residual list emptied).
* :class:`ProtocolError` — a node violated simulator rules (messaged a
  non-neighbor, sent a non-Message).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for library-specific errors."""


class ConditionViolation(ReproError, ValueError):
    """A paper precondition on the input instance is violated."""


class ScheduleError(ReproError, RuntimeError):
    """A driver invariant failed during execution."""


class ProtocolError(ReproError, ValueError):
    """A node violated the simulator's communication rules."""
