"""Deterministic, seeded graph family generators.

Every generator returns a ``networkx.Graph`` (or ``DiGraph``) with integer
node labels ``0..n-1`` and — when seeded — is fully deterministic, so every
experiment and test in the repository is reproducible bit-for-bit.

The families cover what the paper's algorithms are sensitive to:

* **rings / paths** — Linial's lower-bound topology, minimum degree;
* **cliques** — tightness of the existence conditions (Lemmas A.1/A.2);
* **random regular** — uniform-degree stress for the gamma-class machinery;
* **G(n, p)** — heterogeneous degrees (per-node conditions matter);
* **trees / hypercubes / tori** — structured sparse instances;
* **book / blow-up graphs** — high-degree hubs next to low-degree fringes,
  the regime where per-color defects (list defective coloring) pay off.
"""

from __future__ import annotations

import random

import networkx as nx


def _relabel(g: nx.Graph) -> nx.Graph:
    """Relabel nodes to 0..n-1 deterministically (sorted original labels)."""
    mapping = {v: i for i, v in enumerate(sorted(g.nodes, key=repr))}
    return nx.relabel_nodes(g, mapping)


def ring(n: int) -> nx.Graph:
    """Cycle on ``n`` nodes (``n >= 3``)."""
    if n < 3:
        raise ValueError(f"ring needs n >= 3, got {n}")
    return nx.cycle_graph(n)


def path(n: int) -> nx.Graph:
    """Path on ``n`` nodes (``n - 1`` edges)."""
    if n < 1:
        raise ValueError(f"path needs n >= 1, got {n}")
    return nx.path_graph(n)


def clique(n: int) -> nx.Graph:
    """Complete graph K_n; K_{Delta+1} witnesses tightness of Eq. (1)/(2)."""
    if n < 1:
        raise ValueError(f"clique needs n >= 1, got {n}")
    return nx.complete_graph(n)


def star(n: int) -> nx.Graph:
    """Star with one hub and ``n - 1`` leaves."""
    if n < 2:
        raise ValueError(f"star needs n >= 2, got {n}")
    return nx.star_graph(n - 1)


def random_regular(n: int, degree: int, seed: int) -> nx.Graph:
    """Random ``degree``-regular graph on ``n`` nodes (``n * degree`` even)."""
    if degree >= n:
        raise ValueError(f"degree {degree} must be < n {n}")
    if (n * degree) % 2:
        raise ValueError("n * degree must be even")
    return _relabel(nx.random_regular_graph(degree, n, seed=seed))


def gnp(n: int, p: float, seed: int) -> nx.Graph:
    """Erdos-Renyi G(n, p)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0,1], got {p}")
    return _relabel(nx.gnp_random_graph(n, p, seed=seed))


def random_tree(n: int, seed: int) -> nx.Graph:
    """Uniform-attachment random tree on ``n`` nodes (seeded)."""
    if n < 1:
        raise ValueError(f"tree needs n >= 1, got {n}")
    if n == 1:
        g = nx.Graph()
        g.add_node(0)
        return g
    rng = random.Random(seed)
    g = nx.Graph()
    g.add_node(0)
    for v in range(1, n):
        g.add_edge(v, rng.randrange(v))
    return g


def hypercube(dim: int) -> nx.Graph:
    """The ``dim``-dimensional hypercube (2^dim nodes, degree dim)."""
    if dim < 1:
        raise ValueError(f"hypercube needs dim >= 1, got {dim}")
    return _relabel(nx.hypercube_graph(dim))


def torus(rows: int, cols: int) -> nx.Graph:
    """2D torus grid (4-regular for rows, cols >= 3)."""
    if rows < 2 or cols < 2:
        raise ValueError("torus needs rows, cols >= 2")
    return _relabel(nx.grid_2d_graph(rows, cols, periodic=True))


def hub_and_fringe(hub_degree: int, fringe_cliques: int, clique_size: int) -> nx.Graph:
    """A high-degree hub attached to many small cliques.

    Degrees are strongly heterogeneous: the hub has degree
    ``hub_degree`` while fringe nodes have degree ``clique_size``.  List
    defective colorings shine here because the hub can trade a large defect
    on a few colors against the fringe's strict lists.
    """
    if fringe_cliques * clique_size < hub_degree:
        raise ValueError("not enough fringe nodes to realize hub degree")
    g = nx.Graph()
    hub = 0
    g.add_node(hub)
    nxt = 1
    attached = 0
    for _ in range(fringe_cliques):
        members = list(range(nxt, nxt + clique_size))
        nxt += clique_size
        for i, u in enumerate(members):
            for w in members[i + 1 :]:
                g.add_edge(u, w)
        for u in members:
            if attached < hub_degree:
                g.add_edge(hub, u)
                attached += 1
    return g


def blowup(base: nx.Graph, k: int) -> nx.Graph:
    """Replace each node by an independent set of ``k`` copies.

    The ``k``-blow-up of ``G`` multiplies all degrees by ``k`` while keeping
    the structure; a convenient way to scale Delta without changing shape.
    """
    if k < 1:
        raise ValueError(f"blow-up factor must be >= 1, got {k}")
    g = nx.Graph()
    for v in base.nodes:
        for i in range(k):
            g.add_node(v * k + i)
    for u, v in base.edges:
        for i in range(k):
            for j in range(k):
                g.add_edge(u * k + i, v * k + j)
    return g


def disjoint_cliques(count: int, size: int) -> nx.Graph:
    """``count`` disjoint copies of K_size (existence tightness experiments)."""
    g = nx.Graph()
    nxt = 0
    for _ in range(count):
        members = list(range(nxt, nxt + size))
        nxt += size
        g.add_nodes_from(members)
        for i, u in enumerate(members):
            for w in members[i + 1 :]:
                g.add_edge(u, w)
    return g


def family(name: str, **kwargs) -> nx.Graph:
    """Dispatch a generator by name — used by the experiment harness."""
    table = {
        "ring": ring,
        "path": path,
        "clique": clique,
        "star": star,
        "random_regular": random_regular,
        "gnp": gnp,
        "random_tree": random_tree,
        "hypercube": hypercube,
        "torus": torus,
        "hub_and_fringe": hub_and_fringe,
        "blowup": blowup,
        "disjoint_cliques": disjoint_cliques,
    }
    if name not in table:
        raise KeyError(f"unknown graph family {name!r}; options: {sorted(table)}")
    return table[name](**kwargs)


def max_degree(g: nx.Graph) -> int:
    """Delta of ``g`` (0 for the empty graph)."""
    return max((d for _, d in g.degree), default=0)
