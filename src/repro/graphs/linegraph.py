"""Line graphs and edge-coloring support.

The paper repeatedly points at edge colorings as the flagship application
of defective/list-defective techniques (the [BE11a], [BKO20], [BBKO22]
line of work operates on line graphs of bounded-rank hypergraphs).  A
``(degree+1)``-list *edge* coloring of ``G`` is exactly a
``(degree+1)``-list vertex coloring of the line graph ``L(G)``, whose
maximum degree is at most ``2(Δ(G) - 1)``.

These helpers build the line graph with stable integer labels, translate
instances and results back and forth, and provide the edge-coloring
validator used by the ``edge_coloring`` example and tests.
"""

from __future__ import annotations

import networkx as nx

from ..core.coloring import ColoringResult
from ..core.colorspace import ColorSpace
from ..core.instance import ListDefectiveInstance
from ..core.validate import ValidationReport


def line_graph(graph: nx.Graph) -> tuple[nx.Graph, dict[int, tuple[int, int]]]:
    """The line graph of ``graph`` with nodes relabeled 0..m-1.

    Returns ``(L, edge_of)`` where ``edge_of[i]`` is the original edge
    (as a sorted tuple) represented by line-graph node ``i``.
    """
    if graph.is_directed():
        raise ValueError("line_graph expects an undirected graph")
    edges = sorted(tuple(sorted(e)) for e in graph.edges)
    index = {e: i for i, e in enumerate(edges)}
    lg = nx.Graph()
    lg.add_nodes_from(range(len(edges)))
    for v in graph.nodes:
        incident = sorted(
            index[tuple(sorted((v, u)))] for u in graph.neighbors(v)
        )
        for a in range(len(incident)):
            for b in range(a + 1, len(incident)):
                lg.add_edge(incident[a], incident[b])
    return lg, {i: e for e, i in index.items()}


def edge_degree_plus_one_instance(
    graph: nx.Graph,
) -> tuple[ListDefectiveInstance, dict[int, tuple[int, int]]]:
    """The (degree+1)-list edge coloring of ``G`` as a vertex instance on L(G).

    Each edge ``e = {u, v}`` gets a palette of ``deg_L(e) + 1`` colors where
    ``deg_L(e) = deg(u) + deg(v) - 2`` — the greedy bound for edge
    colorings (at most ``2Δ - 1`` colors overall, cf. Vizing's Δ+1 which
    needs non-greedy arguments the paper does not use).
    """
    lg, edge_of = line_graph(graph)
    delta_l = max((d for _, d in lg.degree), default=0)
    space = ColorSpace(delta_l + 1)
    lists = {
        i: tuple(range(lg.degree(i) + 1)) for i in lg.nodes
    }
    defects = {i: {x: 0 for x in lists[i]} for i in lg.nodes}
    return ListDefectiveInstance(lg, space, lists, defects), edge_of


def edge_coloring_from_line(
    result: ColoringResult, edge_of: dict[int, tuple[int, int]]
) -> dict[tuple[int, int], int]:
    """Translate a line-graph vertex coloring back to an edge coloring."""
    return {edge_of[i]: c for i, c in result.assignment.items()}


def validate_edge_coloring(
    graph: nx.Graph, coloring: dict[tuple[int, int], int]
) -> ValidationReport:
    """Proper edge coloring: incident edges get distinct colors."""
    violations: list[str] = []
    for e in graph.edges:
        key = tuple(sorted(e))
        if key not in coloring:
            violations.append(f"edge {key} uncolored")
    if violations:
        return ValidationReport(False, violations)
    for v in graph.nodes:
        seen: dict[int, tuple[int, int]] = {}
        for u in graph.neighbors(v):
            key = tuple(sorted((v, u)))
            c = coloring[key]
            if c in seen and seen[c] != key:
                violations.append(
                    f"node {v}: edges {seen[c]} and {key} share color {c}"
                )
            seen[c] = key
    return ValidationReport(not violations, violations)
