"""Bounded-rank hypergraphs, their line graphs, and neighborhood independence.

Paper context: the faster color-space-reduction results ([Kuh20, BKO20,
BBKO22], Corollary 4.1's premise) apply to graphs of *bounded neighborhood
independence* — graphs where no node's neighborhood contains a large
independent set — "a family of graphs that includes line graphs of bounded
rank hypergraphs".

This module provides:

* a seeded random ``rank-r`` hypergraph generator;
* its line graph (one vertex per hyperedge; adjacent iff the hyperedges
  intersect), which has neighborhood independence at most ``r``;
* :func:`neighborhood_independence` — the exact parameter (exponential in
  the worst case; fine at test scale) and a greedy lower bound;

so the tests can *verify* the structural fact the paper leans on, and the
experiments can build bounded-independence inputs.
"""

from __future__ import annotations

import itertools
import random

import networkx as nx


def random_hypergraph(
    n_vertices: int, n_edges: int, rank: int, seed: int
) -> list[tuple[int, ...]]:
    """``n_edges`` distinct hyperedges of size between 2 and ``rank``."""
    if rank < 2:
        raise ValueError(f"rank must be >= 2, got {rank}")
    if n_vertices < rank:
        raise ValueError("need at least `rank` vertices")
    rng = random.Random(seed)
    seen: set[tuple[int, ...]] = set()
    edges: list[tuple[int, ...]] = []
    attempts = 0
    while len(edges) < n_edges and attempts < 100 * n_edges:
        attempts += 1
        size = rng.randint(2, rank)
        e = tuple(sorted(rng.sample(range(n_vertices), size)))
        if e not in seen:
            seen.add(e)
            edges.append(e)
    return edges


def hypergraph_line_graph(edges: list[tuple[int, ...]]) -> nx.Graph:
    """The line graph: node ``i`` per hyperedge, adjacency = intersection."""
    g = nx.Graph()
    g.add_nodes_from(range(len(edges)))
    sets = [set(e) for e in edges]
    for i in range(len(edges)):
        for j in range(i + 1, len(edges)):
            if sets[i] & sets[j]:
                g.add_edge(i, j)
    return g


def neighborhood_independence(graph: nx.Graph, cap: int | None = None) -> int:
    """The maximum size of an independent set inside one neighborhood.

    Exact (exponential worst case — use at test scale).  ``cap`` stops the
    search early once independence >= cap is witnessed (returns ``cap``).
    """
    best = 0
    for v in graph.nodes:
        neigh = sorted(graph.neighbors(v))
        if len(neigh) <= best:
            continue
        # grow candidate independent subsets of the neighborhood
        for size in range(best + 1, len(neigh) + 1):
            found = False
            for subset in itertools.combinations(neigh, size):
                if all(
                    not graph.has_edge(a, b)
                    for a, b in itertools.combinations(subset, 2)
                ):
                    found = True
                    break
            if not found:
                break
            best = size
            if cap is not None and best >= cap:
                return cap
    return best


def greedy_neighborhood_independence(graph: nx.Graph) -> int:
    """A fast greedy lower bound on neighborhood independence."""
    best = 0
    for v in graph.nodes:
        chosen: list[int] = []
        for u in sorted(graph.neighbors(v)):
            if all(not graph.has_edge(u, w) for w in chosen):
                chosen.append(u)
        best = max(best, len(chosen))
    return best
