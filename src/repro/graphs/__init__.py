"""Graph substrate: generators and orientations."""

from .generators import (
    blowup,
    clique,
    disjoint_cliques,
    family,
    gnp,
    hub_and_fringe,
    hypercube,
    max_degree,
    path,
    random_regular,
    random_tree,
    ring,
    star,
    torus,
)
from .hypergraphs import (
    greedy_neighborhood_independence,
    hypergraph_line_graph,
    neighborhood_independence,
    random_hypergraph,
)
from .linegraph import (
    edge_coloring_from_line,
    edge_degree_plus_one_instance,
    line_graph,
    validate_edge_coloring,
)
from .orientation import (
    balanced_orientation,
    bidirect,
    max_outdegree,
    orientation_by_id,
    oriented_digraph,
    random_low_outdegree_digraph,
)

__all__ = [
    "balanced_orientation",
    "edge_coloring_from_line",
    "greedy_neighborhood_independence",
    "hypergraph_line_graph",
    "neighborhood_independence",
    "random_hypergraph",
    "edge_degree_plus_one_instance",
    "line_graph",
    "validate_edge_coloring",
    "bidirect",
    "blowup",
    "clique",
    "disjoint_cliques",
    "family",
    "gnp",
    "hub_and_fringe",
    "hypercube",
    "max_degree",
    "max_outdegree",
    "orientation_by_id",
    "oriented_digraph",
    "path",
    "random_low_outdegree_digraph",
    "random_regular",
    "random_tree",
    "ring",
    "star",
    "torus",
]
