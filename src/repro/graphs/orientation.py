"""Edge orientations: Euler/balanced, acyclic, and low-outdegree orientations.

Lemma A.2's proof needs a *balanced* orientation: orient the edges of a
graph so each node's outdegree is at most ``ceil(deg / 2)``.  The classic
construction (used verbatim here) adds a perfect matching on the odd-degree
nodes, walks Euler circuits of every component, and orients edges along the
walk.

The distributed algorithms also need simple acyclic orientations (by id or
by coloring order) and the conversion of an undirected graph into a directed
one with bounded outdegree.
"""

from __future__ import annotations

import networkx as nx

from ..core.coloring import EdgeOrientation


def balanced_orientation(graph: nx.Graph) -> EdgeOrientation:
    """Orient edges so that every node has outdegree <= ceil(deg(v) / 2).

    Implementation of the Euler-tour argument in Lemma A.2: add a dummy
    matching on odd-degree nodes (making all degrees even), orient each
    component's Euler circuit consistently, then drop the dummy edges.
    Dropping a dummy edge only ever *reduces* an outdegree, so the bound
    ``outdeg(v) <= ceil(deg_G(v) / 2)`` holds in the original graph.
    """
    work = nx.MultiGraph()
    work.add_nodes_from(graph.nodes)
    work.add_edges_from(graph.edges)
    odd = [v for v in work.nodes if work.degree(v) % 2 == 1]
    # Pair up odd-degree nodes arbitrarily (their count is always even).
    dummy_edges: list[tuple[int, int]] = []
    for i in range(0, len(odd), 2):
        u, v = odd[i], odd[i + 1]
        work.add_edge(u, v, dummy=True)
        dummy_edges.append((u, v))

    ori = EdgeOrientation()
    for comp in nx.connected_components(work):
        sub = work.subgraph(comp)
        if sub.number_of_edges() == 0:
            continue
        for u, v in nx.eulerian_circuit(sub):
            # Orient real edges along the walk; count each underlying
            # undirected edge once (MultiGraph may repeat on dummies).
            if graph.has_edge(u, v) and not ori.is_oriented(u, v):
                ori.orient(u, v)
    # Any real edge the Euler walk visited only via its parallel dummy twin
    # cannot exist (dummies are distinct pairs), but guard for completeness:
    for u, v in graph.edges:
        if not ori.is_oriented(u, v):
            ori.orient(u, v)
    return ori


def orientation_by_id(graph: nx.Graph) -> EdgeOrientation:
    """Acyclic orientation: every edge points from smaller to larger id."""
    ori = EdgeOrientation()
    for u, v in graph.edges:
        if u < v:
            ori.orient(u, v)
        else:
            ori.orient(v, u)
    return ori


def oriented_digraph(graph: nx.Graph, ori: EdgeOrientation) -> nx.DiGraph:
    """Materialize an orientation as a ``networkx.DiGraph``."""
    return ori.as_digraph(graph)


def bidirect(graph: nx.Graph) -> nx.DiGraph:
    """Replace each undirected edge by both arcs (undirected -> OLDC view)."""
    dg = nx.DiGraph()
    dg.add_nodes_from(graph.nodes)
    for u, v in graph.edges:
        dg.add_edge(u, v)
        dg.add_edge(v, u)
    return dg


def max_outdegree(dg: nx.DiGraph) -> int:
    """Paper's beta (with the >= 1 clamp of Section 2)."""
    return max((max(1, dg.out_degree(v)) for v in dg.nodes), default=1)


def random_low_outdegree_digraph(
    graph: nx.Graph, seed: int
) -> nx.DiGraph:
    """A digraph whose underlying graph is ``graph`` with balanced outdegrees.

    Combines the Euler-balanced orientation with a deterministic seed-driven
    shuffle of the Euler start points, giving varied but reproducible
    directed test inputs whose maximum outdegree is about Delta/2.
    """
    import random as _random

    rng = _random.Random(seed)
    relabel = list(graph.nodes)
    rng.shuffle(relabel)
    mapping = {v: relabel[i] for i, v in enumerate(sorted(graph.nodes))}
    inverse = {w: v for v, w in mapping.items()}
    shuffled = nx.relabel_nodes(graph, mapping)
    ori = balanced_orientation(shuffled)
    dg = nx.DiGraph()
    dg.add_nodes_from(graph.nodes)
    for a, b in ori:
        if shuffled.has_edge(a, b):
            dg.add_edge(inverse[a], inverse[b])
    return dg
