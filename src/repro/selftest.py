"""One-call repository self-test.

:func:`selftest` runs a fast, end-to-end sanity pass suitable for a fresh
install or CI smoke stage (a few seconds; `pytest tests/` remains the real
suite):

1. the paper→code map resolves completely;
2. every registered coloring algorithm produces a *validated* coloring on
   a small standard graph;
3. the sequential existence constructions succeed at a tight clique;
4. a serialization round-trip is exact;
5. the vectorized engine matches the reference bit-for-bit on one input.

Returns a list of failure strings (empty = healthy); the CLI ``selftest``
subcommand prints them and sets the exit code.
"""

from __future__ import annotations


def selftest() -> list[str]:
    """Run the smoke pass; returns failure descriptions (empty = OK)."""
    failures: list[str] = []

    # 1. paper map
    from .paper_map import verify_all

    failures += [f"paper_map: {b}" for b in verify_all()]

    # 2. registry algorithms
    from .algorithms.registry import algorithm_names, run
    from .core import validate_proper_coloring
    from .graphs import random_regular

    g = random_regular(24, 4, seed=1)
    for name in algorithm_names():
        try:
            res, _metrics = run(name, g)
            if not validate_proper_coloring(g, res):
                failures.append(f"registry: {name} produced an invalid coloring")
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append(f"registry: {name} raised {type(exc).__name__}: {exc}")

    # 3. existence constructions at the threshold
    from .core import same_list_clique, validate_arbdefective, validate_ldc
    from .algorithms import solve_arbdefective_euler, solve_ldc_potential

    try:
        inst = same_list_clique(9, colors=5, defect=1)
        if not validate_ldc(inst, solve_ldc_potential(inst)):
            failures.append("lemma A.1: invalid output at the tight clique")
        inst2 = same_list_clique(9, colors=3, defect=1)
        if not validate_arbdefective(inst2, solve_arbdefective_euler(inst2)):
            failures.append("lemma A.2: invalid output at the tight clique")
    except Exception as exc:  # noqa: BLE001
        failures.append(f"existence: {type(exc).__name__}: {exc}")

    # 4. serialization round trip
    from .core import degree_plus_one_instance
    from .io import instance_from_dict, instance_to_dict

    inst3 = degree_plus_one_instance(g)
    back = instance_from_dict(instance_to_dict(inst3))
    if back.lists != inst3.lists or back.defects != inst3.defects:
        failures.append("io: instance round-trip drifted")

    # 5. vectorized equivalence
    from .algorithms import run_linial
    from .sim.vectorized import linial_vectorized

    ref, m_ref, _p1 = run_linial(g)
    vec, m_vec, _p2 = linial_vectorized(g)
    if ref.assignment != vec.assignment or m_ref.summary() != m_vec.summary():
        failures.append("vectorized: Linial engines diverged")

    return failures
