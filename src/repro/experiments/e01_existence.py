"""E01 — Existence thresholds of Lemmas A.1 and A.2 (table).

Paper claims:

* Lemma A.1: a list defective coloring exists whenever
  ``sum_x (d_v(x)+1) > Delta`` (Eq. 1), and the condition is *necessary* on
  the clique K_{Delta+1} with identical lists/defects.
* Lemma A.2: a list arbdefective coloring exists whenever
  ``sum_x (2 d_v(x)+1) > Delta`` (Eq. 2); again tight on cliques.

Measurement: on cliques K_n with identical uniform instances
(``c`` colors of constant defect ``d``), sweep the budget
``B1 = c (d+1)`` / ``B2 = c (2d+1)`` through the threshold ``Delta = n - 1``
and record whether the constructive solvers (potential descent / Euler
orientation) succeed and whether *any* solution can exist (for the
below-threshold clique rows, the pigeonhole impossibility argument).
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..core import ColorSpace, uniform_instance, validate_arbdefective, validate_ldc
from ..graphs import clique
from ..algorithms.greedy import solve_arbdefective_euler, solve_ldc_potential
from .harness import ExperimentResult


def _try_ldc(n: int, c: int, d: int) -> bool:
    inst = uniform_instance(clique(n), ColorSpace(max(c, 1)), range(c), d)
    try:
        result = solve_ldc_potential(inst, require_condition=False)
    except ValueError:
        return False
    return bool(validate_ldc(inst, result))


def _try_arb(n: int, c: int, d: int) -> bool:
    inst = uniform_instance(clique(n), ColorSpace(max(c, 1)), range(c), d)
    try:
        result = solve_arbdefective_euler(inst, require_condition=False)
    except ValueError:
        return False
    return bool(validate_arbdefective(inst, result))


def run(fast: bool = True) -> ExperimentResult:
    sizes = [5, 9, 13] if fast else [5, 9, 13, 17, 21, 25]
    rows = []
    checks: dict[str, bool] = {}
    for n in sizes:
        delta = n - 1
        for d in (0, 1, 2):
            # smallest c meeting Eq. (1): c (d+1) > Delta
            c_at = delta // (d + 1) + 1
            ok_at = _try_ldc(n, c_at, d)
            ok_below = _try_ldc(n, c_at - 1, d) if c_at > 1 else False
            # smallest c meeting Eq. (2): c (2d+1) > Delta
            c2_at = delta // (2 * d + 1) + 1
            ok2_at = _try_arb(n, c2_at, d)
            ok2_below = _try_arb(n, c2_at - 1, d) if c2_at > 1 else False
            rows.append(
                [
                    f"K_{n}",
                    d,
                    f"{c_at}({'ok' if ok_at else 'FAIL'})",
                    f"{c_at-1}({'ok' if ok_below else 'fail'})",
                    f"{c2_at}({'ok' if ok2_at else 'FAIL'})",
                    f"{c2_at-1}({'ok' if ok2_below else 'fail'})",
                ]
            )
            checks[f"ldc_at_threshold_n{n}_d{d}"] = ok_at
            checks[f"arb_at_threshold_n{n}_d{d}"] = ok2_at
            # below threshold on a clique with identical lists, a valid
            # solution cannot exist (pigeonhole) — the solver must fail.
            checks[f"ldc_below_tight_n{n}_d{d}"] = not ok_below
            checks[f"arb_below_tight_n{n}_d{d}"] = not ok2_below
    body = format_table(
        ["graph", "d", "LDC c@Eq1", "LDC c-1", "arb c@Eq2", "arb c-1"],
        rows,
        title="Existence on cliques: solver success exactly at the Eq.(1)/(2) thresholds",
    )
    findings = (
        "The constructive solvers succeed at exactly the paper's budgets "
        "(c(d+1) > Delta for LDC, c(2d+1) > Delta for arbdefective) and fail "
        "one color below on cliques, matching the claimed tightness."
    )
    return ExperimentResult(
        experiment="E01 existence thresholds (Lemmas A.1/A.2)",
        kind="table",
        paper_claim="LDC exists iff sum (d+1) > Delta; arbdefective iff sum (2d+1) > Delta (tight on cliques)",
        body=body,
        findings=findings,
        data={"rows": rows},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
