"""E05 — Oriented list defective coloring, Theorem 1.1 (table).

Paper claims: OLDC instances with ``sum_x (d_v(x)+1)^2 >= alpha beta_v^2
kappa`` are solvable deterministically in O(log beta) rounds with messages
of O(min{|C|, Lambda log |C|} + log beta + log m) bits.

Measurement: build instances at a fixed condition slack across growing
outdegrees beta; run both the basic (Lemma 3.6) and main (Thm 1.1 /
Lemma 3.8) algorithms; record validity, rounds, and max message bits, and
compare rounds against c * log2(beta) and message bits against the
theorem's formula value.
"""

from __future__ import annotations

import random

from ..analysis.bounds import theorem_1_1_message_bits
from ..analysis.tables import format_table
from ..core import ColorSpace, ListDefectiveInstance, scaled_budget_instance, validate_oldc
from ..graphs import gnp, random_low_outdegree_digraph
from ..algorithms.linial import run_linial
from ..algorithms.oldc_basic import solve_oldc_basic
from ..algorithms.oldc_main import solve_oldc_main
from .harness import ExperimentResult


def _make_instance(
    n: int,
    p: float,
    seed: int,
    slack: float,
    space_size: int,
    max_defect: int = 3,
    tight_space: bool = False,
):
    rng = random.Random(seed)
    g = gnp(n, p, seed=seed + 1)
    dg = random_low_outdegree_digraph(g, seed=seed + 2)
    outdeg = {v: max(1, dg.out_degree(v)) for v in dg.nodes}
    beta_max = max(outdeg.values())
    if tight_space:
        # barely big enough for the heaviest node's budget: lists overlap
        # almost totally, making the condition actually bind (E07)
        space_size = int(slack * beta_max * beta_max) + 8
    else:
        # ensure the space can hold the slack * beta^2 defect budget of
        # the heaviest node (the per-color weight is at least 1)
        space_size = max(space_size, int(slack * beta_max * beta_max * 1.2) + 64)
    space = ColorSpace(space_size)
    und = scaled_budget_instance(
        g, space, weight_exponent=2.0, slack=slack, max_defect=max_defect,
        rng=rng, directed_outdegrees=outdeg,
    )
    inst = ListDefectiveInstance(dg, space, und.lists, und.defects)
    return g, inst


def run(fast: bool = True) -> ExperimentResult:
    configs = (
        [(40, 0.15, 200), (80, 0.15, 400), (120, 0.15, 700)]
        if fast
        else [(40, 0.15, 200), (80, 0.15, 400), (160, 0.12, 900), (240, 0.12, 1400), (320, 0.10, 2000)]
    )
    rows = []
    checks: dict[str, bool] = {}
    for idx, (n, p, space_size) in enumerate(configs):
        g, inst = _make_instance(n, p, seed=17 + idx, slack=30.0, space_size=space_size)
        pre, _m0, _pal = run_linial(g)
        beta = inst.max_outdegree
        res_b, m_b, rep_b = solve_oldc_basic(inst, pre.assignment)
        ok_b = bool(validate_oldc(inst, res_b))
        res_m, m_m, rep_m = solve_oldc_main(inst, pre.assignment)
        ok_m = bool(validate_oldc(inst, res_m))
        bound_bits = theorem_1_1_message_bits(
            inst.space.size, inst.max_list_size, beta, n
        )
        rows.append(
            [
                n,
                beta,
                ok_b,
                m_b.rounds,
                m_b.max_message_bits,
                ok_m,
                m_m.rounds,
                m_m.max_message_bits,
                f"{bound_bits:.0f}",
            ]
        )
        checks[f"basic_valid_n{n}"] = ok_b
        checks[f"main_valid_n{n}"] = ok_m
        checks[f"main_rounds_logbeta_n{n}"] = (
            m_m.rounds <= 12 * max(1, beta).bit_length() + 12
        )
    table = format_table(
        [
            "n",
            "beta",
            "basic ok",
            "basic rnds",
            "basic bits",
            "main ok",
            "main rnds",
            "main bits",
            "Thm1.1 bits",
        ],
        rows,
        title="OLDC at slack 30 (sum (d+1)^2 >= 30 beta_v^2): validity, rounds, message bits",
    )
    findings = (
        "Both OLDC algorithms produce valid colorings across all instances; the "
        "main algorithm's rounds stay within a constant times log2(beta) and its "
        "messages within the Theorem 1.1 size formula."
    )
    return ExperimentResult(
        experiment="E05 OLDC algorithms (Lemma 3.6 / Theorem 1.1)",
        kind="table",
        paper_claim="OLDC solvable in O(log beta) rounds with min{|C|, Lambda log|C|}+log beta+log m bit messages",
        body=table,
        findings=findings,
        data={"rows": rows},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
