"""E06 — Recursive color space reduction, Theorem 1.2 / Corollary 4.2 (figure).

Paper claims: with ``r`` levels of recursion at branching ``p = |C|^{1/r}``,
an OLDC algorithm whose messages grow with the color space needs only
``O(|C|^{1/r})``-size encodings per message, at the cost of a factor ``r``
in rounds (and ``kappa^r`` in the list-size requirement).

Measurement: fix one OLDC instance over a large color space; run the
Theorem 1.1 solver behind the reduction for r = 1 (no reduction), 2, 3, 4;
record max message bits and rounds.  Max message bits must decrease
monotonically in r (roughly like |C|^{1/r} for the list-encoding part)
while rounds grow roughly linearly in r; outputs stay valid.
"""

from __future__ import annotations

from ..analysis.tables import ascii_series, format_table
from ..core import validate_oldc
from ..algorithms.colorspace_reduction import corollary_4_2_p, solve_with_reduction
from ..algorithms.linial import run_linial
from ..algorithms.oldc_main import solve_oldc_main
from .e05_oldc import _make_instance
from .harness import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    n = 60 if fast else 140
    space_size = 512 if fast else 1024
    g, inst = _make_instance(n, 0.15, seed=23, slack=40.0, space_size=space_size)
    pre, _m0, _pal = run_linial(g)

    def base(instance, init_coloring):
        return solve_oldc_main(instance, init_coloring)

    rs = [1, 2, 3] if fast else [1, 2, 3, 4]
    rows = []
    bits_series = []
    rounds_series = []
    checks: dict[str, bool] = {}
    for r in rs:
        if r == 1:
            res, metrics, _rep = base(inst, pre.assignment)
            levels = 1
            p = inst.space.size
        else:
            p = corollary_4_2_p(inst.space.size, r)
            res, metrics, rep = solve_with_reduction(
                inst, pre.assignment, base, p=p, nu=1.0
            )
            levels = rep.levels
        ok = bool(validate_oldc(inst, res))
        rows.append([r, p, levels, ok, metrics.rounds, metrics.max_message_bits])
        bits_series.append(float(metrics.max_message_bits))
        rounds_series.append(float(metrics.rounds))
        checks[f"valid_r{r}"] = ok
    checks["bits_decrease_with_r"] = all(
        bits_series[i + 1] <= bits_series[i] for i in range(len(bits_series) - 1)
    )
    checks["bits_drop_significant"] = bits_series[-1] <= 0.55 * bits_series[0]
    table = format_table(
        ["r", "p=|C|^(1/r)", "levels", "valid", "rounds", "max msg bits"],
        rows,
        title=f"Corollary 4.2 on |C|={inst.space.size}, n={n}",
    )
    fig = ascii_series(
        [float(r) for r in rs],
        {"max msg bits": bits_series, "rounds": rounds_series},
        title="Message size falls, rounds rise, as recursion deepens",
        logy=True,
    )
    findings = (
        f"Max message size falls from {bits_series[0]:.0f} to {bits_series[-1]:.0f} "
        f"bits as r grows {rs[0]}->{rs[-1]} while rounds grow "
        f"{rounds_series[0]:.0f}->{rounds_series[-1]:.0f}; all outputs valid — the "
        "Theorem 1.2 time/message trade-off."
    )
    return ExperimentResult(
        experiment="E06 recursive color space reduction (Thm 1.2 / Cor 4.2)",
        kind="figure",
        paper_claim="r reduction levels shrink messages to O(|C|^{1/r}) at an O(r) round factor",
        body=table + "\n\n" + fig,
        findings=findings,
        data={"rows": rows},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
