"""E16 — Fault-injection degradation curves and resilient wrappers (figure).

The paper's algorithms are synchronous and fault-free; this experiment
measures what its pipeline *buys* under an adversarial message layer
(:mod:`repro.faults`): a seeded :class:`~repro.faults.FaultPlan` drops a
fraction ``p`` of messages, and we sweep ``p`` to chart

* **raw degradation** — unprotected Linial loses validity once drops hit
  a schedule step (every lost color message can hide a collision);
* **defect slack** — the [Kuh09] defective variant tolerates the *same*
  fault rate that breaks the proper run, because its validity contract
  (``<= d`` conflicting neighbors) absorbs fault-induced collisions —
  the list-defective framework's slack doubling as fault tolerance;
* **graceful recovery** — :func:`~repro.faults.resilient_linial`
  (retransmit-with-ack + oracle-checked restarts) stays valid across the
  whole swept range at a measured, bounded overhead: rounds multiply by
  the retransmit period ``1 + 2*retries``, bits by the retry traffic —
  no cliff below the retry budget.

Both engines run every faulty cell through the sweep machinery
(``linial_faulty`` vs ``linial_faulty_vectorized``) and must agree
bit-for-bit, per-round fault counts included — the fault layer is part
of the equivalence contract, not an exception to it.
"""

from __future__ import annotations

from ..faults import FaultPlan, resilient_linial
from ..analysis.tables import format_table
from ..core.validate import validate_proper_coloring
from ..graphs import random_regular
from ..obs import RunRecord, compare_round_accounting
from .harness import ExperimentResult
from .sweep import SweepCell, run_sweep

#: Seed of every fault plan in this experiment (one adversary, swept rate).
FAULT_SEED = 21


def run(fast: bool = True) -> ExperimentResult:
    checks: dict[str, bool] = {}
    n, degree = (150, 4) if fast else (600, 4)
    ps = [0.0, 0.05, 0.1, 0.2, 0.3] if fast else [0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3]
    retries, restarts = 2, 2
    graph = random_regular(n, degree, seed=1)

    # every (engine, p) coordinate through the sweep machinery
    cells = []
    for p in ps:
        plan = {"seed": FAULT_SEED, "p_drop": p}
        for algo in ("linial_faulty", "linial_faulty_vectorized"):
            cells.append(
                SweepCell.make(
                    "random_regular",
                    {"n": n, "degree": degree, "seed": 1},
                    algo,
                    {"faults": plan},
                )
            )
    results = {
        (r.cell.algorithm, dict(r.cell.spec()["algo_params"]["faults"])["p_drop"]): r
        for r in run_sweep(cells, cache_dir=None, workers=1)
    }

    rows = []
    baseline_rounds = baseline_bits = None
    engines_agree = True
    for p in ps:
        ref = results[("linial_faulty", p)].data
        vec = results[("linial_faulty_vectorized", p)].data
        cmp = compare_round_accounting(
            RunRecord.from_dict(ref["run_record"]),
            RunRecord.from_dict(vec["run_record"]),
        )
        agree = (
            cmp["accounting_equal"]
            and cmp["faults_equal"]
            and ref["metrics"] == vec["metrics"]
        )
        engines_agree = engines_agree and agree

        wres, wm, _pal, info = resilient_linial(
            graph,
            FaultPlan(seed=FAULT_SEED, p_drop=p),
            retries=retries,
            restarts=restarts,
        )
        w_ok = bool(validate_proper_coloring(graph, wres))
        if p == 0.0:
            baseline_rounds, baseline_bits = wm.rounds, wm.total_bits
        rows.append(
            [
                f"{p:.2f}",
                ref["valid"],
                agree,
                w_ok,
                info["attempts"],
                wm.rounds,
                wm.total_bits,
            ]
        )
        checks[f"wrapped_valid_p{p:g}"] = w_ok
        # graceful: overhead stays a small multiple of the fault-free
        # wrapped run — retries add bits, never extra attempts/cliffs
        checks[f"overhead_bounded_p{p:g}"] = (
            wm.rounds <= 2 * baseline_rounds and wm.total_bits <= 3 * baseline_bits
        )
    checks["engines_agree_all_p"] = engines_agree
    # unprotected Linial must actually degrade in the swept range —
    # otherwise the wrapped columns above prove nothing
    checks["raw_degrades"] = any(
        not results[("linial_faulty", p)].data["valid"] for p in ps if p >= 0.1
    )

    # defect slack: at a rate that breaks the proper run, the defective
    # variant's own contract (<= d conflicts) still holds — fault damage
    # is absorbed by the same slack the list-defective framework trades on.
    # Which rate first breaks depends on n (drops must land on a schedule
    # step AND hide a collision), so probe at the measured break point.
    first_break = next(
        (p for p in ps if not results[("linial_faulty", p)].data["valid"]), None
    )
    if first_break is None:
        checks["defect_slack_absorbs"] = False
    else:
        slack_cells = [
            SweepCell.make(
                "random_regular",
                {"n": n, "degree": degree, "seed": 1},
                algo,
                {"faults": {"seed": FAULT_SEED, "p_drop": first_break}, "defect": 2},
            )
            for algo in ("linial_faulty", "linial_faulty_vectorized")
        ]
        slack_ref, slack_vec = run_sweep(slack_cells, cache_dir=None, workers=1)
        checks[f"defect_slack_absorbs_p{first_break:g}"] = bool(
            slack_ref.data["valid"] and slack_vec.data["valid"]
        )

    table = format_table(
        ["p_drop", "raw valid", "engines agree", "wrapped valid", "attempts", "rounds", "bits"],
        rows,
        title=(
            f"Linial under message drops (random_regular n={n} d={degree}; "
            f"retransmit retries={retries}, restarts={restarts})"
        ),
    )
    findings = (
        f"Raw Linial first breaks at p_drop={first_break}, while the wrapped "
        f"run stays valid across the whole range at <= {retries + 1}x data "
        "traffic (no cliff below the retry budget); a defect-2 contract "
        f"absorbs the damage of p_drop={first_break} outright — the paper's "
        "defect slack doubles as fault tolerance.  Both engines replay the "
        "identical fault schedule, per-round fault counts included."
    )
    return ExperimentResult(
        experiment="E16 fault-injection resilience",
        kind="figure",
        paper_claim=(
            "defective/list-defective slack and O(log* n) schedules survive "
            "an adversarial message layer when wrapped with bounded retries"
        ),
        body=table,
        findings=findings,
        data={"rows": rows, "ps": ps, "first_break": first_break},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
