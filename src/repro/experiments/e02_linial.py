"""E02 — Linial's coloring substrate [Lin87] (figure).

Paper claims (Section 1, used throughout): an O(Delta^2)-coloring is
computable in O(log* n) rounds from unique IDs.

Measurement: (a) rounds vs n on rings (Delta fixed = 2): the round count
must grow like log* n — i.e. be tiny and essentially flat (<= 4 over four
orders of magnitude); (b) final palette vs Delta on random regular graphs:
the palette must be Theta(Delta^2) (log-log exponent ~ 2).
"""

from __future__ import annotations

from ..analysis.bounds import log_star
from ..analysis.tables import ascii_series, fit_exponent, format_table
from ..core import validate_proper_coloring
from ..graphs import random_regular, ring
from ..algorithms.linial import run_linial
from .harness import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    ns = [16, 64, 256, 1024] if fast else [16, 64, 256, 1024, 4096, 16384]
    ring_rows = []
    checks: dict[str, bool] = {}
    max_rounds = 0
    for n in ns:
        g = ring(n)
        res, metrics, palette = run_linial(g)
        ok = bool(validate_proper_coloring(g, res))
        ring_rows.append([n, metrics.rounds, log_star(n), palette, res.num_colors(), ok])
        checks[f"ring_proper_n{n}"] = ok
        max_rounds = max(max_rounds, metrics.rounds)
    checks["rounds_log_star_flat"] = max_rounds <= 2 * log_star(ns[-1])

    # Linial only engages when the id space exceeds its O(Delta^2) fixed
    # point, so the palette sweep needs n >> Delta^2.
    deltas = [2, 4, 6, 8] if fast else [2, 4, 6, 8, 12, 16]
    palettes = []
    for d in deltas:
        n = max(8 * d * d, 64)
        if (n * d) % 2:
            n += 1
        g = random_regular(n, d, seed=7)
        res, metrics, palette = run_linial(g)
        checks[f"regular_proper_d{d}"] = bool(validate_proper_coloring(g, res))
        palettes.append(min(palette, n))
    expo = fit_exponent([float(d) for d in deltas], [float(p) for p in palettes])
    checks["palette_quadratic_in_delta"] = 1.4 <= expo <= 2.6

    table = format_table(
        ["n (ring)", "rounds", "log* n", "palette", "colors used", "proper"],
        ring_rows,
        title="Linial on rings: rounds track log* n",
    )
    fig = ascii_series(
        [float(d) for d in deltas],
        {"palette": [float(p) for p in palettes], "Delta^2": [float(d * d) for d in deltas]},
        title="Final palette vs Delta (random regular graphs)",
        logy=True,
    )
    findings = (
        f"Rounds stay at <= {max_rounds} across n up to {ns[-1]} (log*-flat); the "
        f"final palette grows with exponent {expo:.2f} in Delta (claim: 2)."
    )
    return ExperimentResult(
        experiment="E02 Linial substrate [Lin87]",
        kind="figure",
        paper_claim="O(Delta^2) colors in O(log* n) rounds",
        body=table + "\n\n" + fig,
        findings=findings,
        data={"ring_rows": ring_rows, "deltas": deltas, "palettes": palettes, "exponent": expo},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
