"""E09 — Theorem 1.4: (degree+1)-list coloring in CONGEST (table).

Paper claims: a deterministic (degree+1)-list coloring (and thus
(Delta+1)-coloring) in ``sqrt(Delta) polylog Delta + O(log* n)`` rounds
using O(log n)-bit messages.  The contrast the paper draws: the LOCAL
algorithms of [FHK16, BEG18, MT20] need every node to learn its neighbors'
lists — Omega(Delta log Delta)-bit messages — so they fit CONGEST only
when Delta = O(log n).

Measurement: across growing Delta, run (a) Theorem 1.4's pipeline and (b)
the big-message baseline with the [FHK16/MT20] message profile; tabulate
max message bits against the CONGEST budget B = O(log n).  Theorem 1.4
must stay within budget at every Delta while the baseline's messages blow
through it once Delta log Delta > B; rounds must grow sublinearly in
Delta.
"""

from __future__ import annotations

import random

from ..analysis.bounds import fhk_local_rounds, theorem_1_4_rounds
from ..analysis.tables import fit_exponent, format_table
from ..core import ColorSpace, degree_plus_one_instance
from ..graphs import random_regular
from ..sim.metrics import congest_bandwidth
from ..algorithms.baselines import list_exchange_coloring
from ..algorithms.congest_coloring import congest_degree_plus_one
from .harness import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    deltas = [8, 16, 32] if fast else [8, 16, 32, 64, 96, 128]
    rows = []
    xs, ours = [], []
    checks: dict[str, bool] = {}
    for delta in deltas:
        n = max(6 * delta, 64)
        if (n * delta) % 2:
            n += 1
        g = random_regular(n, delta, seed=59)
        # The paper's setting: lists drawn from a poly(Delta) color space,
        # so a list costs Theta(Delta log Delta) bits to transmit.
        inst = degree_plus_one_instance(
            g, space=ColorSpace(delta * delta), rng=random.Random(61)
        )
        # Corollary 4.2's reduction (r=2 levels over the poly(Delta) space)
        # is what keeps the list-encoding messages within the budget —
        # exactly the pipeline Theorem 1.4's proof prescribes.
        res, m, rep = congest_degree_plus_one(inst, reduction_r=2)
        res_b, m_b = list_exchange_coloring(inst, seed=3)
        budget = congest_bandwidth(n)
        ours_ok = m.compliant_with(n)
        theirs_ok = m_b.compliant_with(n)
        rows.append(
            [
                delta,
                n,
                budget,
                m.rounds,
                m.max_message_bits,
                ours_ok,
                m_b.rounds,
                m_b.max_message_bits,
                theirs_ok,
                f"{theorem_1_4_rounds(delta, n):.0f}",
                f"{fhk_local_rounds(delta, n):.0f}",
            ]
        )
        checks[f"ours_congest_ok_delta{delta}"] = ours_ok
        last_phases = rep.phases
        checks[f"valid_delta{delta}"] = rep.valid
        xs.append(float(delta))
        ours.append(float(m.rounds))
    # the big-message baseline must overflow the budget at the largest Delta
    checks["baseline_blows_budget_at_large_delta"] = rows[-1][8] is False
    expo = fit_exponent(xs, ours)
    checks["rounds_sublinear_plus"] = expo <= 1.35
    breakdown = (
        "\n\n" + last_phases.render() + f"\n(phase breakdown of the Delta={deltas[-1]} run)"
        if last_phases is not None
        else ""
    )
    table = format_table(
        [
            "Delta",
            "n",
            "B bits",
            "our rnds",
            "our bits",
            "our<=B",
            "FHK rnds",
            "FHK bits",
            "FHK<=B",
            "Thm1.4 formula",
            "FHK formula",
        ],
        rows,
        title="(degree+1)-list coloring in CONGEST: Theorem 1.4 vs the big-message profile",
    ) + breakdown
    findings = (
        f"Theorem 1.4's pipeline stays inside the CONGEST budget at every Delta "
        f"and its rounds grow with exponent {expo:.2f} in Delta; the "
        "[FHK16/MT20]-profile baseline exceeds the budget once Delta log Delta "
        "outgrows O(log n) — exactly the gap (Delta between log n and log^2 n) "
        "the paper says its algorithm closes."
    )
    return ExperimentResult(
        experiment="E09 Theorem 1.4 CONGEST (degree+1) coloring",
        kind="table",
        paper_claim="sqrt(Delta) polylog rounds with O(log n)-bit messages; FHK/MT needs Omega(Delta log Delta)-bit messages",
        body=table,
        findings=findings,
        data={"rows": rows, "exponent": expo},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
