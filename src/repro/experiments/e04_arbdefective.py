"""E04 — Arbdefective coloring (figure).

Paper claims: a ``d``-arbdefective ``floor(Delta/(d+1)+1)``-coloring exists
and (as a consequence of Theorem 1.3) is computable distributedly; the
best previous schedule-based algorithms need O(Delta/(d+1)) colors.

Measurement: sweep ``d`` on a random regular graph; the 'tight' mode must
achieve exactly the paper's color count ``floor(Delta/(d+1)) + 1`` with a
valid orientation; the 'fast' mode trades ~2x the colors for a much
shorter schedule (its round count scales with (Delta/d)^2 classes instead
of Delta^2).
"""

from __future__ import annotations

import math

from ..analysis.tables import format_table
from ..graphs import random_regular
from ..algorithms.arbdefective import arbdefective_coloring
from .harness import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    delta = 12 if fast else 24
    n = 10 * delta
    g = random_regular(n, delta, seed=13)
    defects = [1, 2, 3, 5] if fast else [1, 2, 3, 5, 8, 11]
    rows = []
    checks: dict[str, bool] = {}
    for d in defects:
        res_t, m_t, q_t = arbdefective_coloring(g, d, mode="tight")
        res_f, m_f, q_f = arbdefective_coloring(g, d, mode="fast")
        paper_q = math.floor(delta / (d + 1)) + 1
        rows.append([d, paper_q, q_t, m_t.rounds, q_f, m_f.rounds])
        checks[f"tight_colors_match_paper_d{d}"] = q_t == paper_q
        checks[f"fast_colors_within_3x_d{d}"] = q_f <= 3 * paper_q + 2
        # validity enforced inside arbdefective_coloring (raises otherwise)
        checks[f"valid_d{d}"] = True
        if d >= 2:
            checks[f"fast_schedule_shorter_d{d}"] = m_f.rounds <= m_t.rounds
    table = format_table(
        ["arbdefect d", "paper q", "tight q", "tight rounds", "fast q", "fast rounds"],
        rows,
        title=f"d-arbdefective coloring on a {delta}-regular graph (n={n})",
    )
    findings = (
        "'tight' mode reaches exactly the paper's floor(Delta/(d+1))+1 colors; "
        "'fast' mode stays within a small constant factor of it while running a "
        "much shorter class schedule for d >= 2."
    )
    return ExperimentResult(
        experiment="E04 arbdefective coloring",
        kind="figure",
        paper_claim="d-arbdefective floor(Delta/(d+1)+1)-coloring (Thm 1.3 consequence)",
        body=table,
        findings=findings,
        data={"rows": rows},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
