"""A01 — Ablations of the design choices DESIGN.md calls out (table).

Four knobs, each ablated on a fixed workload:

* **P2 family size k'** — more candidate sets per node give the P1 step
  more room to dodge conflicts; expect max realized risk to fall (or stay
  0) as k' grows, and validity to be stable from small k' on.
* **tau** — the conflict threshold trades message size against conflict
  sensitivity.
* **congruence restriction (Lemma 3.5)** — for the g-generalized problem,
  skipping the mod-(2g+1) restriction voids the "one conflict per list"
  argument; expect more validity failures / larger realized g-defects.
* **decline audit (Theorem 1.3 driver)** — accepting defect violators
  instead of declining them must produce invalid outputs on hard
  instances, demonstrating the audit is load-bearing.
"""

from __future__ import annotations

from ..analysis.bounds import ParamScale
from ..analysis.tables import format_table
from ..core.validate import validate_generalized_oldc, validate_ldc, validate_oldc
from ..core.instance import degree_plus_one_instance
from ..graphs import random_regular
from ..algorithms.arblist import solve_list_arbdefective
from ..algorithms.linial import run_linial
from ..algorithms.oldc_basic import solve_oldc_basic
from ..algorithms.oldc_main import solve_oldc_main
from .e05_oldc import _make_instance
from .harness import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    checks: dict[str, bool] = {}
    n = 50 if fast else 90
    sections: list[str] = []

    # --- k' sweep -----------------------------------------------------
    g, inst = _make_instance(n, 0.15, seed=301, slack=25.0, space_size=256)
    pre, _m, _p = run_linial(g)
    rows = []
    risks = []
    for k_prime in ([4, 16] if fast else [2, 4, 8, 16, 32]):
        scale = ParamScale(tau=3, k_prime=k_prime)
        res, metrics, rep = solve_oldc_main(inst, pre.assignment, scale=scale)
        ok = bool(validate_oldc(inst, res))
        rows.append([k_prime, ok, rep.max_risk, metrics.max_message_bits])
        risks.append(rep.max_risk)
        checks[f"kprime_{k_prime}_valid"] = ok
    checks["risk_not_worse_with_larger_kprime"] = risks[-1] <= risks[0] + 1
    sections.append(
        format_table(
            ["k'", "valid", "max risk", "max msg bits"],
            rows,
            title="Ablation 1: P2 family size k' (Thm 1.1 solver)",
        )
    )

    # --- tau sweep ------------------------------------------------------
    rows = []
    for tau in ([2, 3] if fast else [1, 2, 3, 5]):
        scale = ParamScale(tau=tau, k_prime=16)
        res, metrics, rep = solve_oldc_main(inst, pre.assignment, scale=scale)
        ok = bool(validate_oldc(inst, res))
        rows.append([tau, ok, rep.max_risk, metrics.max_message_bits])
        checks[f"tau_{tau}_valid"] = ok
    sections.append(
        format_table(
            ["tau", "valid", "max risk", "max msg bits"],
            rows,
            title="Ablation 2: conflict threshold tau",
        )
    )

    # --- congruence restriction for g > 0 --------------------------------
    g2, inst2 = _make_instance(n, 0.15, seed=303, slack=40.0, space_size=512)
    pre2, _m2, _p2 = run_linial(g2)
    rows = []
    worst = {}
    for use in (True, False):
        res, _metrics, _rep = solve_oldc_basic(
            inst2, pre2.assignment, g=2, use_congruence=use
        )
        rep = validate_generalized_oldc(inst2, res, g=2)
        rows.append(
            ["on" if use else "off", bool(rep), rep.max_defect_seen]
        )
        worst[use] = rep.max_defect_seen
    checks["congruence_no_worse"] = worst[True] <= worst[False]
    sections.append(
        format_table(
            ["Lemma 3.5 restriction", "valid", "max g-defect seen"],
            rows,
            title="Ablation 3: congruence-class restriction (g = 2)",
        )
    )

    # --- decline audit -----------------------------------------------------
    # small residual lists (low Delta) are where undetected violations occur
    g3 = random_regular(10 * 8, 8, seed=305)
    inst3 = degree_plus_one_instance(g3)
    rows = []
    validity = {}
    for decline in (True, False):
        res, _metrics, rep = solve_list_arbdefective(
            inst3, decline_violators=decline
        )
        ok = bool(validate_ldc(inst3, res))
        rows.append(["on" if decline else "off", ok, rep.declined])
        validity[decline] = ok
    checks["decline_audit_gives_validity"] = validity[True]
    sections.append(
        format_table(
            ["decline audit", "valid", "declined nodes"],
            rows,
            title="Ablation 4: Theorem 1.3 decline audit",
        )
    )

    # --- inner OLDC solver choice (Thm 1.3 pluggability) --------------------
    from ..algorithms.arblist import basic_oldc_solver, default_oldc_solver
    from ..core.validate import validate_arbdefective

    g4 = random_regular(12 * 8, 16, seed=307)
    inst4 = degree_plus_one_instance(g4)
    rows = []
    rounds_of = {}
    for label, solver in (
        ("Thm 1.1 (main)", default_oldc_solver()),
        ("Lemma 3.6 (basic)", basic_oldc_solver()),
    ):
        res, metrics, _rep = solve_list_arbdefective(inst4, oldc_solver=solver)
        ok = bool(validate_arbdefective(inst4, res))
        rows.append([label, ok, metrics.rounds])
        rounds_of[label] = metrics.rounds
        checks[f"inner_{label.split()[0].lower().strip('.')}_valid"] = ok
    checks["basic_inner_not_slower"] = (
        rounds_of["Lemma 3.6 (basic)"] <= rounds_of["Thm 1.1 (main)"]
    )
    sections.append(
        format_table(
            ["inner OLDC solver", "valid", "Thm 1.3 rounds"],
            rows,
            title="Ablation 5: pluggable inner solver (per-class round constant)",
        )
    )

    findings = (
        "All five mechanisms earn their keep: larger candidate families "
        "keep the realized risk at/near zero, tau trades conflict "
        "sensitivity for bits, disabling the Lemma 3.5 congruence "
        "restriction degrades the realized g-defect, the decline audit "
        "is what guarantees valid outputs in the small-residual-list regime, "
        "and swapping the inner OLDC solver confirms the per-class round "
        "constant (aux + 3h vs h + 4) is what separates them at this scale."
    )
    return ExperimentResult(
        experiment="A01 design-choice ablations",
        kind="table",
        paper_claim="(design choices of the reproduction; DESIGN.md §3)",
        body="\n\n".join(sections),
        findings=findings,
        data={},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
