"""Parallel sweep runner with deterministic partitioning and a JSON cache.

The paper's experiments (E01-E16) all share one expensive shape: run an
algorithm over a grid of (graph family, size, seed, parameters) cells and
collect round/bit/color metrics per cell.  This module packages that shape
once, for every driver:

* a **cell** (:class:`SweepCell`) names a graph spec (generator family +
  parameters), an algorithm, and algorithm parameters — everything needed
  to recompute it from scratch in any process;
* :func:`run_sweep` executes a list of cells, farming the missing ones out
  to worker processes with **deterministic work partitioning** (cells are
  sorted by cache key and dealt round-robin, so a given cell always lands
  on the same worker for a given worker count) and loading the rest from
  the cache;
* the **cache** is one JSON file per cell under ``cache_dir``, named by
  :func:`cell_key` — a SHA-256 hash of the canonical JSON encoding of
  ``{family, family_params, algorithm, algo_params}``.  Re-running a sweep
  only computes missing cells; everything else is read back and marked
  ``cached``.  Delete a file (or pass ``recompute=True``) to invalidate.

Cached cell records are plain JSON::

    {"key": "<hex16>", "schema": 4, "status": "ok",
     "family": "random_regular",
     "family_params": {"n": 1000, "degree": 8, "seed": 0},
     "algorithm": "linial_vectorized", "algo_params": {},
     "n": 1000, "m": 4000, "delta": 8,
     "colors": 25, "valid": true, "palette": 25,
     "metrics": {"rounds": 4, "total_messages": ..., "total_bits": ...,
                 "max_message_bits": ..., "bandwidth_limit": ...,
                 "bandwidth_violations": 0},
     "wall_s": 0.123, "batched_with": 1,
     "timings": {"csr_build": ..., "rounds": ...},
     "run_record": {... full repro.obs.RunRecord, per-round rows ...}}

``schema`` is :data:`SWEEP_CACHE_SCHEMA`; cached files written under any
other schema (including the pre-observability records, which carried no
``schema`` field at all) are treated as cache *misses* and recomputed, so
a code change that alters the record layout can never be silently served
stale from disk.

Fault tolerance (the shape a long overnight sweep actually needs):

* **poison-cell quarantine** — a cell whose computation raises is recorded
  as a structured ``status: "failed"`` record (:func:`failed_record`)
  carrying the exception type and message; the sweep continues and the
  failure is a first-class result, not an abort;
* **per-cell checkpointing** — workers persist each record the moment it
  is computed (when a ``cache_dir`` is available), so a killed worker
  process loses at most the one cell it was on;
* **bounded batch retry** — :func:`_compute_parallel` resubmits only the
  batches whose worker died (``BrokenProcessPool``), with exponential
  backoff, and finally computes stragglers inline; checkpointed cells are
  *resumed* from the cache, never recomputed;
* **corrupt-file quarantine** — an unreadable cache file is renamed to
  ``<key>.json.corrupt`` (:func:`load_cached_detailed`) so the evidence
  survives while the cell recomputes; ``repro-cli report`` surfaces the
  count.

Workers batch before they loop: pending cells that share a
:data:`BATCHABLE_ALGORITHMS` algorithm are packed into one block-diagonal
:class:`~repro.sim.batch.BatchCSRGraph` execution per algorithm
(:func:`compute_cells_batched`) — identical records cell for cell, one
engine invocation for the whole group — with cached cells excluded from
the packing and the per-cell loop as fallback.

Algorithms are resolved by name: first against the engine fast paths
(``linial_vectorized``, ``classic_vectorized``, ``greedy_vectorized``,
``defective_split``, ``linial_faulty_vectorized`` on the vectorized CSR
engine; ``linial_compiled``, ``greedy_compiled``,
``defective_split_compiled`` on the compiled backend of
:mod:`repro.sim.compiled`), then against the recorder-aware reference
paths (``linial``, ``classic``, ``greedy``, ``linial_faulty``,
``linial_resilient`` — the first three are equivalence twins of the fast
paths, the fault paths inject a :class:`~repro.faults.FaultPlan` taken
from ``algo_params["faults"]``), then against
:mod:`repro.algorithms.registry` (the remaining reference
implementations), so one sweep can mix engine runs at large n with
reference runs at small n.  Which backend owns each sweep name — and
which names batch — is declared once in :mod:`repro.sim.backends`
(:func:`~repro.sim.backends.backend_of_sweep_algorithm`,
:func:`~repro.sim.backends.batchable_sweep_algorithms`); this module's
dispatch tables are checked against that registry by
:func:`repro.sim.backends.consistency_report`.  Fast-path and
reference-path cells attach a full per-round
:class:`~repro.obs.RunRecord` to their cache record; cross-engine pairs
(see :data:`repro.analysis.report.ENGINE_PAIRS`) must agree row for
row — including the per-round fault columns.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from ..atomic import atomic_write_text, sweep_stale_tmp

#: Version of the cached cell-record layout.  Bump whenever the record
#: gains, loses, or reinterprets fields; :func:`load_cached` treats any
#: other version (including records from before this field existed) as a
#: cache miss, so stale layouts are recomputed instead of silently served.
#: v3: records gained ``status`` ("ok" | "failed") and, on failure, a
#: structured ``error`` — the poison-cell quarantine format.
#: v4: records gained ``batched_with`` (how many cells shared the record's
#: engine invocation) and ``wall_s`` of a batched cell changed meaning
#: from "batch wall split evenly" to "actual wall time of the whole
#: batch" — per-cell cost is ``wall_s / batched_with``.
SWEEP_CACHE_SCHEMA = 4

#: Attempts per batch before the parallel runner falls back to computing
#: the batch inline (first try + retries of batches whose worker died).
MAX_BATCH_RETRIES = 2


# ----------------------------------------------------------------------
# cells and keys
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """One recomputable sweep coordinate."""

    family: str
    family_params: tuple[tuple[str, Any], ...]
    algorithm: str
    algo_params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        family: str,
        family_params: Mapping[str, Any],
        algorithm: str,
        algo_params: Mapping[str, Any] | None = None,
    ) -> "SweepCell":
        """Normalize mapping parameters into a hashable, ordered cell."""

        def freeze(value: Any) -> Any:
            # nested mappings (e.g. a FaultPlan spec) must hash and
            # serialize canonically, exactly like the top-level params
            if isinstance(value, Mapping):
                return tuple(sorted((k, freeze(v)) for k, v in value.items()))
            return value

        return cls(
            family=family,
            family_params=tuple(sorted(family_params.items())),
            algorithm=algorithm,
            algo_params=tuple(
                sorted((k, freeze(v)) for k, v in (algo_params or {}).items())
            ),
        )

    def spec(self) -> dict[str, Any]:
        """The canonical (JSON-ready) spec dict of this cell."""

        def thaw(value: Any) -> Any:
            if (
                isinstance(value, tuple)
                and value
                and all(isinstance(p, tuple) and len(p) == 2 for p in value)
            ):
                return {k: thaw(v) for k, v in value}
            return value

        return {
            "family": self.family,
            "family_params": dict(self.family_params),
            "algorithm": self.algorithm,
            "algo_params": {k: thaw(v) for k, v in self.algo_params},
        }


def cell_key(cell: SweepCell) -> str:
    """Stable cache key: SHA-256 of the canonical JSON spec (16 hex chars)."""
    blob = json.dumps(cell.spec(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class CellResult:
    """Outcome of one cell: the JSON record plus cache provenance.

    ``cache_status`` is the initial cache probe's verdict for this cell —
    ``hit``/``failed`` when served from disk, ``miss``/``stale``/
    ``corrupt`` when the cell went on to compute (``miss`` also covers
    disabled caching and ``recompute=True``).
    """

    cell: SweepCell
    data: dict[str, Any]
    cached: bool = False
    cache_status: str = "miss"

    @property
    def key(self) -> str:
        return self.data["key"]

    @property
    def failed(self) -> bool:
        """Whether this cell carries a quarantined failure record."""
        return self.data.get("status", "ok") == "failed"


# ----------------------------------------------------------------------
# algorithm dispatch
# ----------------------------------------------------------------------
def _announce_coloring_metrics(graph, space_size: int, recorder):
    """Synthesized accounting for sequential solvers publishing a coloring.

    The sequential greedy has no distributed execution to account, so both
    the reference and vectorized sweep paths charge the *same* canonical
    cost — one round in which every node sends its final color index to
    every neighbor — making ``greedy`` vs ``greedy_vectorized`` a valid
    cross-engine equivalence pair (identical per-round rows by
    construction, same bit convention as the schedule reduction's
    announcements).
    """
    from ..sim.engine import record_uniform_round, synthesized_metrics
    from ..sim.message import index_bits

    metrics = synthesized_metrics(graph.number_of_nodes())
    bits = index_bits(max(2, space_size))
    record_uniform_round(
        metrics, recorder, 2 * graph.number_of_edges(), bits, uncolored=0
    )
    return metrics


def _fault_plan(params: Mapping[str, Any]):
    """The cell's :class:`~repro.faults.FaultPlan` from ``algo_params``."""
    from ..faults import FaultPlan

    return FaultPlan.from_dict(dict(params.get("faults") or {}))


def _run_linial_vectorized(graph, params, recorder=None):
    from ..sim.vectorized import linial_vectorized

    res, metrics, palette = linial_vectorized(
        graph, defect=int(params.get("defect", 0)), recorder=recorder
    )
    return res, metrics, palette


def _run_classic_vectorized(graph, params, recorder=None):
    from ..sim.vectorized import classic_delta_plus_one_vectorized

    res, metrics = classic_delta_plus_one_vectorized(graph, recorder=recorder)
    return res, metrics, None


def _run_greedy_vectorized(graph, params, recorder=None):
    from ..core.instance import delta_plus_one_instance
    from ..sim.vectorized import greedy_list_vectorized

    instance = delta_plus_one_instance(graph)
    res = greedy_list_vectorized(instance)
    metrics = _announce_coloring_metrics(graph, instance.space.size, recorder)
    if recorder is not None:
        recorder.finalize(
            metrics,
            n=graph.number_of_nodes(),
            m=graph.number_of_edges(),
            palette=instance.space.size,
        )
    return res, metrics, instance.space.size


def _run_defective_split(graph, params, recorder=None):
    from ..core.coloring import ColoringResult
    from ..sim.vectorized import defective_split_vectorized

    classes, metrics, palette = defective_split_vectorized(
        graph, defect=int(params.get("defect", 1)), recorder=recorder
    )
    return ColoringResult(classes), metrics, palette


def _run_linial_faulty_vectorized(graph, params, recorder=None):
    from ..sim.vectorized import linial_vectorized

    res, metrics, palette = linial_vectorized(
        graph,
        defect=int(params.get("defect", 0)),
        recorder=recorder,
        faults=_fault_plan(params),
    )
    return res, metrics, palette


def _run_linial_reference(graph, params, recorder=None):
    from ..algorithms.linial import run_linial

    res, metrics, palette = run_linial(
        graph, defect=int(params.get("defect", 0)), recorder=recorder
    )
    return res, metrics, palette


def _run_classic_reference(graph, params, recorder=None):
    from ..algorithms.reduction import classic_delta_plus_one

    res, metrics = classic_delta_plus_one(graph, recorder=recorder)
    return res, metrics, None


def _run_greedy_reference(graph, params, recorder=None):
    from ..algorithms.greedy import greedy_list_coloring
    from ..core.instance import delta_plus_one_instance

    instance = delta_plus_one_instance(graph)
    res = greedy_list_coloring(instance)
    metrics = _announce_coloring_metrics(graph, instance.space.size, recorder)
    if recorder is not None:
        recorder.finalize(
            metrics,
            n=graph.number_of_nodes(),
            m=graph.number_of_edges(),
            palette=instance.space.size,
        )
    return res, metrics, instance.space.size


def _run_linial_faulty_reference(graph, params, recorder=None):
    from ..algorithms.linial import run_linial

    res, metrics, palette = run_linial(
        graph,
        defect=int(params.get("defect", 0)),
        recorder=recorder,
        faults=_fault_plan(params),
    )
    return res, metrics, palette


def _run_linial_resilient(graph, params, recorder=None):
    """Wrapped Linial under faults (:func:`repro.faults.resilient_linial`).

    Metrics merge every attempt sequentially, so the recorder's record
    carries the concatenated per-round accounting of all attempts; the
    restart history lands in the cell record's ``resilience`` field via
    the info dict returned here.
    """
    from ..faults import resilient_linial

    res, metrics, palette, info = resilient_linial(
        graph,
        _fault_plan(params),
        defect=int(params.get("defect", 0)),
        retries=int(params.get("retries", 2)),
        restarts=int(params.get("restarts", 2)),
    )
    if recorder is not None:
        recorder.finalize(
            metrics,
            n=graph.number_of_nodes(),
            m=graph.number_of_edges(),
            palette=palette,
        )
    return res, metrics, palette, info


def _run_linial_compiled(graph, params, recorder=None):
    from ..sim.compiled import linial_compiled

    res, metrics, palette = linial_compiled(
        graph, defect=int(params.get("defect", 0)), recorder=recorder
    )
    return res, metrics, palette


def _run_greedy_compiled(graph, params, recorder=None):
    from ..core.instance import delta_plus_one_instance
    from ..sim.compiled import greedy_list_compiled

    instance = delta_plus_one_instance(graph)
    res = greedy_list_compiled(instance)
    metrics = _announce_coloring_metrics(graph, instance.space.size, recorder)
    if recorder is not None:
        recorder.finalize(
            metrics,
            n=graph.number_of_nodes(),
            m=graph.number_of_edges(),
            palette=instance.space.size,
        )
    return res, metrics, instance.space.size


def _run_defective_split_compiled(graph, params, recorder=None):
    from ..core.coloring import ColoringResult
    from ..sim.compiled import defective_split_compiled

    classes, metrics, palette = defective_split_compiled(
        graph, defect=int(params.get("defect", 1)), recorder=recorder
    )
    return ColoringResult(classes), metrics, palette


def _fk24_cell_config(graph, params):
    """The cell's (lists, space, defect) — shared by the fast path, the
    reference path, and the batched twin so all three run the identical
    instance.  ``slack`` widens every list; ``list_seed`` switches from
    palette-prefix lists to per-node sampled (gappy) ones."""
    from ..algorithms.fk24 import fk24_lists

    defect = int(params.get("defect", 1))
    seed = params.get("list_seed")
    lists, space = fk24_lists(
        graph,
        defect,
        slack=int(params.get("slack", 0)),
        seed=None if seed is None else int(seed),
    )
    return lists, space, defect


def _run_fk24_vectorized(graph, params, recorder=None):
    from ..sim.vectorized import fk24_vectorized

    lists, space, defect = _fk24_cell_config(graph, params)
    res, metrics, palette = fk24_vectorized(
        graph, lists=lists, space_size=space, defect=defect, recorder=recorder
    )
    return res, metrics, palette


def _run_fk24_reference(graph, params, recorder=None):
    from ..algorithms.fk24 import run_fk24

    lists, space, defect = _fk24_cell_config(graph, params)
    res, metrics, palette = run_fk24(
        graph, lists=lists, space_size=space, defect=defect, recorder=recorder
    )
    return res, metrics, palette


FAST_PATHS: dict[str, Callable] = {
    "linial_vectorized": _run_linial_vectorized,
    "classic_vectorized": _run_classic_vectorized,
    "greedy_vectorized": _run_greedy_vectorized,
    "defective_split": _run_defective_split,
    "linial_faulty_vectorized": _run_linial_faulty_vectorized,
    "fk24_vectorized": _run_fk24_vectorized,
    "linial_compiled": _run_linial_compiled,
    "greedy_compiled": _run_greedy_compiled,
    "defective_split_compiled": _run_defective_split_compiled,
}


def _batchable_algorithms() -> tuple[str, ...]:
    from ..sim.backends import batchable_sweep_algorithms

    return batchable_sweep_algorithms()


#: Fast paths with a block-diagonal batched twin (:mod:`repro.sim.batch`
#: / :func:`repro.sim.compiled.linial_compiled_batch`).  Derived from the
#: backend registry (:func:`repro.sim.backends.batchable_sweep_algorithms`)
#: so a backend declaring an algorithm ``batched`` is the single source of
#: truth.  A worker batch whose pending cells share one of these
#: algorithms runs them as a single block-diagonal execution (see
#: :func:`compute_cells_batched`) instead of looping `compute_cell`.
BATCHABLE_ALGORITHMS: tuple[str, ...] = _batchable_algorithms()

#: Recorder-aware reference twins of the fast paths.  ``classic`` shadows
#: the registry entry of the same name so sweep cells get per-round
#: observability records; outputs and metrics are identical either way.
#: ``linial_faulty``/``linial_resilient`` run the fault-injected variants
#: (plan taken from ``algo_params["faults"]``).
REFERENCE_PATHS: dict[str, Callable] = {
    "linial": _run_linial_reference,
    "classic": _run_classic_reference,
    "greedy": _run_greedy_reference,
    "linial_faulty": _run_linial_faulty_reference,
    "linial_resilient": _run_linial_resilient,
    "fk24": _run_fk24_reference,
}


def algorithm_names() -> list[str]:
    """Every algorithm name a sweep cell may reference."""
    from ..algorithms.registry import algorithm_names as registry_names

    return sorted(
        set(FAST_PATHS) | set(REFERENCE_PATHS) | set(registry_names())
    )


def _validate(graph, result, algorithm, params) -> bool:
    """Vectorized validity check appropriate to the algorithm's contract."""
    from ..sim.engine import CSRGraph, equal_neighbor_counts

    if algorithm.startswith("fk24"):
        # arbdefective contract: the defect budget counts same-colored
        # *out*-neighbors under the result's adoption orientation
        from ..core.validate import validate_arbdefective_plain

        return bool(
            validate_arbdefective_plain(
                graph, result, int(params.get("defect", 1))
            ).ok
        )

    csr = CSRGraph.from_networkx(graph)
    colors = csr.gather(result.assignment)
    same = equal_neighbor_counts(csr, colors)
    default = 1 if algorithm.startswith("defective_split") else 0
    allowed = int(params.get("defect", default))
    return bool(same.size == 0 or int(same.max()) <= allowed)


def compute_cell(cell: SweepCell) -> dict[str, Any]:
    """Build the cell's graph, run its algorithm, and return the record.

    Fast-path and reference-path cells run under a
    :class:`~repro.obs.RunRecorder`, so the record carries the full
    per-round :class:`~repro.obs.RunRecord` (``run_record``) and the
    profiler's phase timings (``timings``); registry-only algorithms set
    both to their empty values.  Raises propagate — quarantine into
    :func:`failed_record` is the *batch* layer's job, so direct callers
    still see real exceptions.
    """
    from .. import graphs
    from ..algorithms import registry
    from ..obs import RunRecorder
    from ..sim.backends import backend_of_sweep_algorithm

    family_params = dict(cell.family_params)
    algo_params = dict(cell.spec()["algo_params"])
    graph = graphs.family(cell.family, **family_params)
    delta = max((d for _, d in graph.degree), default=0)

    t0 = time.perf_counter()
    palette = None
    recorder = None
    extra: dict[str, Any] = {}
    if cell.algorithm in FAST_PATHS:
        engine = backend_of_sweep_algorithm(cell.algorithm).engine
        recorder = RunRecorder(engine=engine, algorithm=cell.algorithm)
        result, metrics, palette = FAST_PATHS[cell.algorithm](
            graph, algo_params, recorder
        )
    elif cell.algorithm in REFERENCE_PATHS:
        engine = backend_of_sweep_algorithm(cell.algorithm).engine
        recorder = RunRecorder(engine=engine, algorithm=cell.algorithm)
        out = REFERENCE_PATHS[cell.algorithm](graph, algo_params, recorder)
        if len(out) == 4:  # resilient path also returns restart info
            result, metrics, palette, info = out
            extra["resilience"] = info
        else:
            result, metrics, palette = out
    else:
        result, metrics = registry.run(cell.algorithm, graph)
    wall = time.perf_counter() - t0

    run_record = recorder.record if recorder is not None else None
    record = dict(cell.spec())
    record.update(
        key=cell_key(cell),
        schema=SWEEP_CACHE_SCHEMA,
        status="ok",
        n=graph.number_of_nodes(),
        m=graph.number_of_edges(),
        delta=delta,
        colors=result.num_colors(),
        valid=_validate(graph, result, cell.algorithm, algo_params),
        palette=palette,
        metrics=metrics.summary() if metrics is not None else None,
        wall_s=wall,
        batched_with=1,
        timings=dict(run_record.timings) if run_record is not None else {},
        run_record=run_record.to_dict() if run_record is not None else None,
        **extra,
    )
    return record


def failed_record(
    cell: SweepCell,
    exc: BaseException,
    wall_s: float = 0.0,
    batched_with: int = 1,
) -> dict[str, Any]:
    """The quarantine record of a cell whose computation raised.

    Shape-compatible with an ``ok`` record (same spec/key/schema fields,
    analysis-facing fields nulled) plus ``status: "failed"`` and a
    structured ``error`` — enough to re-identify, report, and retry the
    cell without ever aborting the sweep that hit it.
    """
    record = dict(cell.spec())
    record.update(
        key=cell_key(cell),
        schema=SWEEP_CACHE_SCHEMA,
        status="failed",
        error={"type": type(exc).__name__, "message": str(exc)},
        n=None,
        m=None,
        delta=None,
        colors=None,
        valid=False,
        palette=None,
        metrics=None,
        wall_s=wall_s,
        batched_with=batched_with,
        timings={},
        run_record=None,
    )
    return record


def _run_batched(algorithm: str, built: list[tuple]) -> list[Any]:
    """Run one batchable algorithm over pre-built ``(cell, graph, params,
    recorder)`` tuples; one ``(result, metrics, palette)`` or exception per
    cell, matching :data:`FAST_PATHS` output cell for cell."""
    from ..core.coloring import ColoringResult
    from ..core.instance import delta_plus_one_instance
    from ..sim.batch import (
        classic_delta_plus_one_vectorized_batch,
        defective_split_vectorized_batch,
        greedy_list_vectorized_batch,
        linial_vectorized_batch,
    )

    gs = [graph for _, graph, _, _ in built]
    params_list = [params for _, _, params, _ in built]
    recs = [rec for _, _, _, rec in built]
    if algorithm == "linial_vectorized":
        return linial_vectorized_batch(
            gs,
            defect=[int(p.get("defect", 0)) for p in params_list],
            recorders=recs,
            return_exceptions=True,
        )
    if algorithm == "linial_compiled":
        from ..sim.compiled import linial_compiled_batch

        return linial_compiled_batch(
            gs,
            defect=[int(p.get("defect", 0)) for p in params_list],
            recorders=recs,
            return_exceptions=True,
        )
    if algorithm == "linial_faulty_vectorized":
        return linial_vectorized_batch(
            gs,
            defect=[int(p.get("defect", 0)) for p in params_list],
            recorders=recs,
            faults=[_fault_plan(p) for p in params_list],
            return_exceptions=True,
        )
    if algorithm == "classic_vectorized":
        outs = classic_delta_plus_one_vectorized_batch(
            gs, recorders=recs, return_exceptions=True
        )
        return [
            o if isinstance(o, BaseException) else (o[0], o[1], None)
            for o in outs
        ]
    if algorithm == "greedy_vectorized":
        instances = [delta_plus_one_instance(g) for g in gs]
        outs = greedy_list_vectorized_batch(instances, return_exceptions=True)
        normalized: list[Any] = []
        for (cell, graph, params, rec), inst, o in zip(built, instances, outs):
            if isinstance(o, BaseException):
                normalized.append(o)
                continue
            metrics = _announce_coloring_metrics(graph, inst.space.size, rec)
            rec.finalize(
                metrics,
                n=graph.number_of_nodes(),
                m=graph.number_of_edges(),
                palette=inst.space.size,
            )
            normalized.append((o, metrics, inst.space.size))
        return normalized
    if algorithm == "defective_split":
        outs = defective_split_vectorized_batch(
            gs,
            defect=[int(p.get("defect", 1)) for p in params_list],
            recorders=recs,
            return_exceptions=True,
        )
        return [
            o
            if isinstance(o, BaseException)
            else (ColoringResult(o[0]), o[1], o[2])
            for o in outs
        ]
    if algorithm == "fk24_vectorized":
        from ..sim.batch import fk24_vectorized_batch

        configs = [
            _fk24_cell_config(g, p) for g, p in zip(gs, params_list)
        ]
        return fk24_vectorized_batch(
            gs,
            lists=[c[0] for c in configs],
            space_size=[c[1] for c in configs],
            defect=[c[2] for c in configs],
            recorders=recs,
            return_exceptions=True,
        )
    raise ValueError(f"algorithm {algorithm!r} has no batched path")


def compute_cells_batched(cells: Sequence[SweepCell]) -> list[dict[str, Any]]:
    """Compute same-algorithm cells as one block-diagonal batched run.

    The cells' graphs are packed into a single
    :class:`~repro.sim.batch.BatchCSRGraph` execution; per-cell records
    come back identical to :func:`compute_cell`'s except for the clock
    fields: ``wall_s`` is the *actual* wall time of the whole batched
    engine invocation (not an even split — splitting fabricated per-cell
    times that no clock ever measured), ``batched_with`` records how many
    cells shared that invocation (so per-cell cost is
    ``wall_s / batched_with``), and ``timings`` are the shared batch
    phases.  Per-cell quarantine is preserved: a cell whose graph build
    or in-batch run raises (e.g. a crash-stop
    :class:`~repro.sim.node.HaltingError`) yields its
    :func:`failed_record` while sibling cells still land ``ok``.
    """
    from .. import graphs
    from ..obs import RunRecorder
    from ..sim.backends import backend_of_sweep_algorithm

    algorithms = {cell.algorithm for cell in cells}
    if len(algorithms) != 1:
        raise ValueError(
            "compute_cells_batched needs cells sharing one algorithm, got "
            f"{sorted(algorithms)}"
        )
    (algorithm,) = algorithms
    if algorithm not in BATCHABLE_ALGORITHMS:
        raise ValueError(f"algorithm {algorithm!r} has no batched path")

    out: list[dict[str, Any] | None] = [None] * len(cells)
    built: list[tuple] = []  # (cell, graph, params, recorder) per ok build
    positions: list[int] = []
    for pos, cell in enumerate(cells):
        t0 = time.perf_counter()
        try:
            graph = graphs.family(cell.family, **dict(cell.family_params))
        except Exception as exc:
            out[pos] = failed_record(cell, exc, wall_s=time.perf_counter() - t0)
            continue
        params = dict(cell.spec()["algo_params"])
        engine = backend_of_sweep_algorithm(algorithm).engine
        rec = RunRecorder(engine=engine, algorithm=algorithm)
        built.append((cell, graph, params, rec))
        positions.append(pos)
    if built:
        t0 = time.perf_counter()
        outcomes = _run_batched(algorithm, built)
        wall = time.perf_counter() - t0
        for pos, (cell, graph, params, rec), outcome in zip(
            positions, built, outcomes
        ):
            if isinstance(outcome, BaseException):
                out[pos] = failed_record(
                    cell, outcome, wall_s=wall, batched_with=len(built)
                )
                continue
            result, metrics, palette = outcome
            run_record = rec.record
            record = dict(cell.spec())
            record.update(
                key=cell_key(cell),
                schema=SWEEP_CACHE_SCHEMA,
                status="ok",
                n=graph.number_of_nodes(),
                m=graph.number_of_edges(),
                delta=max((d for _, d in graph.degree), default=0),
                colors=result.num_colors(),
                valid=_validate(graph, result, algorithm, params),
                palette=palette,
                metrics=metrics.summary() if metrics is not None else None,
                wall_s=wall,
                batched_with=len(built),
                timings=dict(run_record.timings)
                if run_record is not None
                else {},
                run_record=run_record.to_dict()
                if run_record is not None
                else None,
            )
            out[pos] = record
    return out  # type: ignore[return-value]


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
def _cache_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"{key}.json"


def load_cached_detailed(
    cache_dir: Path | str, cell: SweepCell
) -> tuple[dict[str, Any] | None, str]:
    """The cached record of a cell plus the probe verdict.

    Returns ``(record, status)`` with status one of:

    * ``"hit"`` — a current-schema ``ok`` record;
    * ``"failed"`` — a current-schema quarantined failure record (served,
      so a poisoned cell does not re-poison every rerun; pass
      ``recompute=True`` to retry it);
    * ``"miss"`` — no file;
    * ``"stale"`` — readable JSON under another
      :data:`SWEEP_CACHE_SCHEMA` (recompute, file left to be overwritten);
    * ``"corrupt"`` — unreadable file; it is renamed to
      ``<key>.json.corrupt`` so the evidence survives while the cell
      recomputes fresh.

    ``record`` is ``None`` except for ``hit``/``failed``.
    """
    path = _cache_path(Path(cache_dir), cell_key(cell))
    if not path.exists():
        return None, "miss"
    try:
        record = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        quarantine = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantine)
        except OSError:
            pass  # e.g. racing rerun already moved it; recompute regardless
        return None, "corrupt"
    if not isinstance(record, dict) or record.get("schema") != SWEEP_CACHE_SCHEMA:
        return None, "stale"
    if record.get("status", "ok") == "failed":
        return record, "failed"
    return record, "hit"


def load_cached(cache_dir: Path | str, cell: SweepCell) -> dict[str, Any] | None:
    """The cached ``ok`` record of a cell, or ``None``.

    Thin wrapper over :func:`load_cached_detailed` (which also quarantines
    unreadable files as ``.json.corrupt``); failure records, stale
    schemas, and corrupt files all read as misses here.
    """
    record, status = load_cached_detailed(cache_dir, cell)
    return record if status == "hit" else None


def store_cached(cache_dir: Path | str, record: dict[str, Any]) -> Path:
    """Atomically persist a cell record under its key.

    Delegates to :func:`repro.atomic.atomic_write_text`: the staging
    file name embeds pid + a random token, so two processes racing to
    publish the *same* cell (which under the old
    ``path.with_suffix(".tmp")`` scheme shared one staging path and
    could interleave writes before either ``os.replace``) each stage
    privately and the cache only ever sees one complete record.  A
    crash mid-write leaves a uniquely-named ``.tmp`` that
    :func:`repro.atomic.sweep_stale_tmp` reclaims on the next cache
    load instead of a torn cache entry.
    """
    cache_dir = Path(cache_dir)
    path = _cache_path(cache_dir, record["key"])
    return atomic_write_text(path, json.dumps(record, sort_keys=True, indent=1))


def corrupt_cache_files(cache_dir: Path | str) -> list[Path]:
    """Quarantined ``.json.corrupt`` files under ``cache_dir`` (sorted)."""
    cache_dir = Path(cache_dir)
    if not cache_dir.is_dir():
        return []
    return sorted(cache_dir.glob("*.json.corrupt"))


# ----------------------------------------------------------------------
# deterministic partitioning + parallel execution
# ----------------------------------------------------------------------
def partition_cells(
    cells: Sequence[SweepCell], workers: int
) -> list[list[SweepCell]]:
    """Deal cells to workers deterministically: sort by cache key, then
    round-robin.  The assignment depends only on (cell set, worker count),
    never on timing, so reruns are reproducible."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    ordered = sorted(cells, key=cell_key)
    return [ordered[w::workers] for w in range(workers)]


def _compute_batch(
    specs: list[dict[str, Any]], cache_dir: str | None = None
) -> list[dict[str, Any]]:
    """Worker entry point: compute a batch of cells from their spec dicts.

    With a ``cache_dir``, records are persisted the moment they are
    computed (per-cell checkpoint) and already-checkpointed cells are
    served from disk — so a batch re-submitted after its worker died
    resumes where the dead worker stopped instead of starting over.

    Cells that survive the cache probe and share a
    :data:`BATCHABLE_ALGORITHMS` algorithm run together as one
    block-diagonal :func:`compute_cells_batched` execution (cached cells
    are excluded from the packing — no recompute); everything else falls
    back to the per-cell loop.  Either way, a cell whose computation
    raises is quarantined as a :func:`failed_record`; the rest of the
    batch still runs.
    """
    cells = [
        SweepCell.make(
            spec["family"],
            spec["family_params"],
            spec["algorithm"],
            spec["algo_params"],
        )
        for spec in specs
    ]
    out: list[dict[str, Any] | None] = [None] * len(cells)
    pending: list[int] = []
    for i, cell in enumerate(cells):
        if cache_dir is not None:
            cached, status = load_cached_detailed(cache_dir, cell)
            if status in ("hit", "failed"):
                out[i] = cached
                continue
        pending.append(i)

    groups: dict[str, list[int]] = {}
    singles: list[int] = []
    for i in pending:
        if cells[i].algorithm in BATCHABLE_ALGORITHMS:
            groups.setdefault(cells[i].algorithm, []).append(i)
        else:
            singles.append(i)
    for algorithm in sorted(groups):
        idxs = groups[algorithm]
        if len(idxs) < 2:  # nothing to batch; the per-cell loop is simpler
            singles.extend(idxs)
            continue
        try:
            records = compute_cells_batched([cells[i] for i in idxs])
        except Exception:
            singles.extend(idxs)  # batching itself broke; per-cell fallback
            continue
        for i, record in zip(idxs, records):
            if cache_dir is not None:
                store_cached(cache_dir, record)
            out[i] = record

    for i in sorted(singles):
        t0 = time.perf_counter()
        try:
            record = compute_cell(cells[i])
        except Exception as exc:
            record = failed_record(cells[i], exc, wall_s=time.perf_counter() - t0)
        if cache_dir is not None:
            store_cached(cache_dir, record)
        out[i] = record
    return out  # type: ignore[return-value]


def run_sweep(
    cells: Sequence[SweepCell],
    cache_dir: Path | str | None = None,
    workers: int | None = None,
    recompute: bool = False,
) -> list[CellResult]:
    """Execute a sweep, computing only uncached cells.

    Parameters
    ----------
    cells:
        The grid, in caller order (results come back in the same order).
    cache_dir:
        Directory of per-cell JSON records; ``None`` disables caching.
    workers:
        Worker process count for the missing cells.  ``None`` picks
        ``min(len(missing), cpu_count)``; values <= 1 compute inline
        (no subprocesses), which is also the final fallback when worker
        processes keep dying (see :func:`_compute_parallel`).
    recompute:
        Ignore existing cache entries; their files are removed up front so
        the per-cell checkpoint layer cannot resurrect them mid-run.

    A cell that raises never aborts the sweep — it comes back as a
    ``status: "failed"`` record (see :func:`failed_record`), cached like
    any other result.
    """
    if cache_dir is not None:
        # reclaim staging litter from crashed publishers before reading;
        # age-gated so a live writer's in-flight .tmp is left alone
        sweep_stale_tmp(cache_dir)
    results: dict[str, CellResult] = {}
    statuses: dict[str, str] = {}
    missing: list[SweepCell] = []
    seen: set[str] = set()
    for cell in cells:
        key = cell_key(cell)
        if key in seen:
            continue
        seen.add(key)
        if recompute or cache_dir is None:
            cached, status = None, "miss"
        else:
            cached, status = load_cached_detailed(cache_dir, cell)
        statuses[key] = status
        if cached is not None:
            results[key] = CellResult(
                cell, cached, cached=True, cache_status=status
            )
        else:
            missing.append(cell)

    if recompute and cache_dir is not None:
        for cell in missing:
            path = _cache_path(Path(cache_dir), cell_key(cell))
            path.unlink(missing_ok=True)

    if missing:
        if workers is None:
            workers = min(len(missing), os.cpu_count() or 1)
        workers = max(1, min(workers, len(missing)))
        cache_arg = None if cache_dir is None else str(cache_dir)
        if workers == 1:
            records = _compute_batch([c.spec() for c in missing], cache_arg)
        else:
            records = _compute_parallel(missing, workers, cache_arg)
        for record in records:
            cell = SweepCell.make(
                record["family"],
                record["family_params"],
                record["algorithm"],
                record["algo_params"],
            )
            if cache_dir is not None:
                store_cached(cache_dir, record)
            results[record["key"]] = CellResult(
                cell,
                record,
                cached=False,
                cache_status=statuses.get(record["key"], "miss"),
            )

    ordered: list[CellResult] = []
    emitted: set[str] = set()
    for cell in cells:
        key = cell_key(cell)
        if key not in emitted:
            ordered.append(results[key])
            emitted.add(key)
    return ordered


def _compute_parallel(
    missing: Sequence[SweepCell],
    workers: int,
    cache_dir: str | None = None,
    max_batch_retries: int = MAX_BATCH_RETRIES,
) -> list[dict[str, Any]]:
    """Fan the missing cells out over worker processes, crash-tolerantly.

    Per-batch futures (not one ``pool.map``) so one dead worker costs one
    batch, not the whole sweep's results: batches whose future resolves
    keep their records; batches whose worker died are re-submitted on a
    fresh pool with exponential backoff, up to ``max_batch_retries``
    times, and finally computed inline.  With a ``cache_dir``, retried
    batches resume from the dead worker's per-cell checkpoints (see
    :func:`_compute_batch`), so no finished cell is ever recomputed.
    """
    import concurrent.futures as cf
    import multiprocessing as mp

    batches = [
        [c.spec() for c in batch]
        for batch in partition_cells(missing, workers)
        if batch
    ]
    try:
        ctx = mp.get_context("fork")
    except ValueError:
        ctx = mp.get_context()
    done: list[list[dict[str, Any]] | None] = [None] * len(batches)
    pending = list(range(len(batches)))
    for attempt in range(1 + max_batch_retries):
        if not pending:
            break
        if attempt:
            time.sleep(min(0.25, 0.05 * 2 ** (attempt - 1)))
        try:
            with cf.ProcessPoolExecutor(
                max_workers=min(len(pending), workers), mp_context=ctx
            ) as pool:
                futures = {
                    i: pool.submit(_compute_batch, batches[i], cache_dir)
                    for i in pending
                }
                for i, fut in futures.items():
                    try:
                        done[i] = fut.result()
                    except (OSError, cf.process.BrokenProcessPool):
                        pass  # this batch's worker died; retry below
        except (OSError, cf.process.BrokenProcessPool):
            pass  # pool-level failure; every unresolved batch retries
        pending = [i for i in pending if done[i] is None]
    for i in pending:  # last resort: no subprocess, quarantine still applies
        done[i] = _compute_batch(batches[i], cache_dir)
    return [record for chunk in done for record in chunk or []]


# ----------------------------------------------------------------------
# grid construction helper
# ----------------------------------------------------------------------
def grid(
    family: str,
    algorithms: Sequence[str],
    ns: Sequence[int],
    seeds: Sequence[int] = (0,),
    extra_family_params: Mapping[str, Any] | None = None,
    algo_params: Mapping[str, Any] | None = None,
) -> list[SweepCell]:
    """The standard experiment grid: ``algorithms x ns x seeds`` cells.

    Family parameters that the generator does not accept (``seed`` for
    deterministic families, ``n`` for fixed-size ones) are dropped, so one
    call works across families.
    """
    import inspect

    from ..graphs import generators

    fn = getattr(generators, family, None)
    if family.startswith("_") or not inspect.isfunction(fn):
        raise KeyError(
            f"unknown graph family {family!r}; try `repro-cli families`"
        )
    accepted = set(inspect.signature(fn).parameters)
    cells = []
    for algorithm in algorithms:
        for n in ns:
            for seed in seeds:
                params = {"n": n, "seed": seed, **(extra_family_params or {})}
                params = {k: v for k, v in params.items() if k in accepted}
                cells.append(
                    SweepCell.make(family, params, algorithm, algo_params)
                )
    return cells


@dataclass
class SweepSummary:
    """Headline counters of one :func:`run_sweep` invocation.

    ``corrupt``/``stale`` count cache probes that found an unreadable /
    foreign-schema file (those cells then recomputed); ``failed`` counts
    results carrying a quarantined failure record, whether freshly
    computed or served from the cache.
    """

    total: int = 0
    computed: int = 0
    cached: int = 0
    corrupt: int = 0
    stale: int = 0
    failed: int = 0
    results: list[CellResult] = field(default_factory=list)


def run_sweep_summarized(
    cells: Sequence[SweepCell],
    cache_dir: Path | str | None = None,
    workers: int | None = None,
    recompute: bool = False,
) -> SweepSummary:
    """:func:`run_sweep` plus computed-vs-cached accounting (CLI + tests)."""
    results = run_sweep(cells, cache_dir, workers, recompute)
    cached = sum(1 for r in results if r.cached)
    return SweepSummary(
        total=len(results),
        computed=len(results) - cached,
        cached=cached,
        corrupt=sum(1 for r in results if r.cache_status == "corrupt"),
        stale=sum(1 for r in results if r.cache_status == "stale"),
        failed=sum(1 for r in results if r.failed),
        results=results,
    )
