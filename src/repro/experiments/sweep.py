"""Parallel sweep runner with deterministic partitioning and a JSON cache.

The paper's experiments (E01-E15) all share one expensive shape: run an
algorithm over a grid of (graph family, size, seed, parameters) cells and
collect round/bit/color metrics per cell.  This module packages that shape
once, for every driver:

* a **cell** (:class:`SweepCell`) names a graph spec (generator family +
  parameters), an algorithm, and algorithm parameters — everything needed
  to recompute it from scratch in any process;
* :func:`run_sweep` executes a list of cells, farming the missing ones out
  to worker processes with **deterministic work partitioning** (cells are
  sorted by cache key and dealt round-robin, so a given cell always lands
  on the same worker for a given worker count) and loading the rest from
  the cache;
* the **cache** is one JSON file per cell under ``cache_dir``, named by
  :func:`cell_key` — a SHA-256 hash of the canonical JSON encoding of
  ``{family, family_params, algorithm, algo_params}``.  Re-running a sweep
  only computes missing cells; everything else is read back and marked
  ``cached``.  Delete a file (or pass ``recompute=True``) to invalidate.

Cached cell records are plain JSON::

    {"key": "<hex16>", "schema": 2, "family": "random_regular",
     "family_params": {"n": 1000, "degree": 8, "seed": 0},
     "algorithm": "linial_vectorized", "algo_params": {},
     "n": 1000, "m": 4000, "delta": 8,
     "colors": 25, "valid": true, "palette": 25,
     "metrics": {"rounds": 4, "total_messages": ..., "total_bits": ...,
                 "max_message_bits": ..., "bandwidth_limit": ...,
                 "bandwidth_violations": 0},
     "wall_s": 0.123,
     "timings": {"csr_build": ..., "rounds": ...},
     "run_record": {... full repro.obs.RunRecord, per-round rows ...}}

``schema`` is :data:`SWEEP_CACHE_SCHEMA`; cached files written under any
other schema (including the pre-observability records, which carried no
``schema`` field at all) are treated as cache *misses* and recomputed, so
a code change that alters the record layout can never be silently served
stale from disk.

Algorithms are resolved by name: first against the vectorized fast paths
built on :mod:`repro.sim.engine` (``linial_vectorized``,
``classic_vectorized``, ``greedy_vectorized``, ``defective_split``), then
against the recorder-aware reference paths (``linial``, ``classic``,
``greedy`` — the equivalence twins of the fast paths), then against
:mod:`repro.algorithms.registry` (the remaining reference
implementations), so one sweep can mix engine runs at large n with
reference runs at small n.  Fast-path and reference-path cells attach a
full per-round :class:`~repro.obs.RunRecord` to their cache record;
cross-engine pairs (see :data:`repro.analysis.report.ENGINE_PAIRS`) must
agree row for row.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

#: Version of the cached cell-record layout.  Bump whenever the record
#: gains, loses, or reinterprets fields; :func:`load_cached` treats any
#: other version (including records from before this field existed) as a
#: cache miss, so stale layouts are recomputed instead of silently served.
SWEEP_CACHE_SCHEMA = 2


# ----------------------------------------------------------------------
# cells and keys
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """One recomputable sweep coordinate."""

    family: str
    family_params: tuple[tuple[str, Any], ...]
    algorithm: str
    algo_params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        family: str,
        family_params: Mapping[str, Any],
        algorithm: str,
        algo_params: Mapping[str, Any] | None = None,
    ) -> "SweepCell":
        """Normalize mapping parameters into a hashable, ordered cell."""
        return cls(
            family=family,
            family_params=tuple(sorted(family_params.items())),
            algorithm=algorithm,
            algo_params=tuple(sorted((algo_params or {}).items())),
        )

    def spec(self) -> dict[str, Any]:
        """The canonical (JSON-ready) spec dict of this cell."""
        return {
            "family": self.family,
            "family_params": dict(self.family_params),
            "algorithm": self.algorithm,
            "algo_params": dict(self.algo_params),
        }


def cell_key(cell: SweepCell) -> str:
    """Stable cache key: SHA-256 of the canonical JSON spec (16 hex chars)."""
    blob = json.dumps(cell.spec(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class CellResult:
    """Outcome of one cell: the JSON record plus cache provenance."""

    cell: SweepCell
    data: dict[str, Any]
    cached: bool = False

    @property
    def key(self) -> str:
        return self.data["key"]


# ----------------------------------------------------------------------
# algorithm dispatch
# ----------------------------------------------------------------------
def _announce_coloring_metrics(graph, space_size: int, recorder):
    """Synthesized accounting for sequential solvers publishing a coloring.

    The sequential greedy has no distributed execution to account, so both
    the reference and vectorized sweep paths charge the *same* canonical
    cost — one round in which every node sends its final color index to
    every neighbor — making ``greedy`` vs ``greedy_vectorized`` a valid
    cross-engine equivalence pair (identical per-round rows by
    construction, same bit convention as the schedule reduction's
    announcements).
    """
    from ..sim.engine import record_uniform_round, synthesized_metrics
    from ..sim.message import index_bits

    metrics = synthesized_metrics(graph.number_of_nodes())
    bits = index_bits(max(2, space_size))
    record_uniform_round(
        metrics, recorder, 2 * graph.number_of_edges(), bits, uncolored=0
    )
    return metrics


def _run_linial_vectorized(graph, params, recorder=None):
    from ..sim.vectorized import linial_vectorized

    res, metrics, palette = linial_vectorized(
        graph, defect=int(params.get("defect", 0)), recorder=recorder
    )
    return res, metrics, palette


def _run_classic_vectorized(graph, params, recorder=None):
    from ..sim.vectorized import classic_delta_plus_one_vectorized

    res, metrics = classic_delta_plus_one_vectorized(graph, recorder=recorder)
    return res, metrics, None


def _run_greedy_vectorized(graph, params, recorder=None):
    from ..core.instance import delta_plus_one_instance
    from ..sim.vectorized import greedy_list_vectorized

    instance = delta_plus_one_instance(graph)
    res = greedy_list_vectorized(instance)
    metrics = _announce_coloring_metrics(graph, instance.space.size, recorder)
    if recorder is not None:
        recorder.finalize(
            metrics,
            n=graph.number_of_nodes(),
            m=graph.number_of_edges(),
            palette=instance.space.size,
        )
    return res, metrics, instance.space.size


def _run_defective_split(graph, params, recorder=None):
    from ..core.coloring import ColoringResult
    from ..sim.vectorized import defective_split_vectorized

    classes, metrics, palette = defective_split_vectorized(
        graph, defect=int(params.get("defect", 1)), recorder=recorder
    )
    return ColoringResult(classes), metrics, palette


def _run_linial_reference(graph, params, recorder=None):
    from ..algorithms.linial import run_linial

    res, metrics, palette = run_linial(
        graph, defect=int(params.get("defect", 0)), recorder=recorder
    )
    return res, metrics, palette


def _run_classic_reference(graph, params, recorder=None):
    from ..algorithms.reduction import classic_delta_plus_one

    res, metrics = classic_delta_plus_one(graph, recorder=recorder)
    return res, metrics, None


def _run_greedy_reference(graph, params, recorder=None):
    from ..algorithms.greedy import greedy_list_coloring
    from ..core.instance import delta_plus_one_instance

    instance = delta_plus_one_instance(graph)
    res = greedy_list_coloring(instance)
    metrics = _announce_coloring_metrics(graph, instance.space.size, recorder)
    if recorder is not None:
        recorder.finalize(
            metrics,
            n=graph.number_of_nodes(),
            m=graph.number_of_edges(),
            palette=instance.space.size,
        )
    return res, metrics, instance.space.size


FAST_PATHS: dict[str, Callable] = {
    "linial_vectorized": _run_linial_vectorized,
    "classic_vectorized": _run_classic_vectorized,
    "greedy_vectorized": _run_greedy_vectorized,
    "defective_split": _run_defective_split,
}

#: Recorder-aware reference twins of the fast paths.  ``classic`` shadows
#: the registry entry of the same name so sweep cells get per-round
#: observability records; outputs and metrics are identical either way.
REFERENCE_PATHS: dict[str, Callable] = {
    "linial": _run_linial_reference,
    "classic": _run_classic_reference,
    "greedy": _run_greedy_reference,
}


def algorithm_names() -> list[str]:
    """Every algorithm name a sweep cell may reference."""
    from ..algorithms.registry import algorithm_names as registry_names

    return sorted(
        set(FAST_PATHS) | set(REFERENCE_PATHS) | set(registry_names())
    )


def _validate(graph, result, algorithm, params) -> bool:
    """Vectorized validity check appropriate to the algorithm's contract."""
    from ..sim.engine import CSRGraph, equal_neighbor_counts

    csr = CSRGraph.from_networkx(graph)
    colors = csr.gather(result.assignment)
    same = equal_neighbor_counts(csr, colors)
    allowed = int(params.get("defect", 1)) if algorithm == "defective_split" else 0
    return bool(same.size == 0 or int(same.max()) <= allowed)


def compute_cell(cell: SweepCell) -> dict[str, Any]:
    """Build the cell's graph, run its algorithm, and return the record.

    Fast-path and reference-path cells run under a
    :class:`~repro.obs.RunRecorder`, so the record carries the full
    per-round :class:`~repro.obs.RunRecord` (``run_record``) and the
    profiler's phase timings (``timings``); registry-only algorithms set
    both to their empty values.
    """
    from .. import graphs
    from ..algorithms import registry
    from ..obs import ENGINE_REFERENCE, ENGINE_VECTORIZED, RunRecorder

    family_params = dict(cell.family_params)
    algo_params = dict(cell.algo_params)
    graph = graphs.family(cell.family, **family_params)
    delta = max((d for _, d in graph.degree), default=0)

    t0 = time.perf_counter()
    palette = None
    recorder = None
    if cell.algorithm in FAST_PATHS:
        recorder = RunRecorder(engine=ENGINE_VECTORIZED, algorithm=cell.algorithm)
        result, metrics, palette = FAST_PATHS[cell.algorithm](
            graph, algo_params, recorder
        )
    elif cell.algorithm in REFERENCE_PATHS:
        recorder = RunRecorder(engine=ENGINE_REFERENCE, algorithm=cell.algorithm)
        result, metrics, palette = REFERENCE_PATHS[cell.algorithm](
            graph, algo_params, recorder
        )
    else:
        result, metrics = registry.run(cell.algorithm, graph)
    wall = time.perf_counter() - t0

    run_record = recorder.record if recorder is not None else None
    record = dict(cell.spec())
    record.update(
        key=cell_key(cell),
        schema=SWEEP_CACHE_SCHEMA,
        n=graph.number_of_nodes(),
        m=graph.number_of_edges(),
        delta=delta,
        colors=result.num_colors(),
        valid=_validate(graph, result, cell.algorithm, algo_params),
        palette=palette,
        metrics=metrics.summary() if metrics is not None else None,
        wall_s=wall,
        timings=dict(run_record.timings) if run_record is not None else {},
        run_record=run_record.to_dict() if run_record is not None else None,
    )
    return record


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
def _cache_path(cache_dir: Path, key: str) -> Path:
    return cache_dir / f"{key}.json"


def load_cached(cache_dir: Path | str, cell: SweepCell) -> dict[str, Any] | None:
    """The cached record of a cell, or ``None`` when absent/unreadable.

    Records written under any other :data:`SWEEP_CACHE_SCHEMA` — including
    pre-versioning records with no ``schema`` field — are misses: the cell
    is recomputed and the file overwritten, never silently served stale.
    """
    path = _cache_path(Path(cache_dir), cell_key(cell))
    if not path.exists():
        return None
    try:
        record = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(record, dict) or record.get("schema") != SWEEP_CACHE_SCHEMA:
        return None
    return record


def store_cached(cache_dir: Path | str, record: dict[str, Any]) -> Path:
    """Atomically persist a cell record under its key."""
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = _cache_path(cache_dir, record["key"])
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(record, sort_keys=True, indent=1))
    os.replace(tmp, path)
    return path


# ----------------------------------------------------------------------
# deterministic partitioning + parallel execution
# ----------------------------------------------------------------------
def partition_cells(
    cells: Sequence[SweepCell], workers: int
) -> list[list[SweepCell]]:
    """Deal cells to workers deterministically: sort by cache key, then
    round-robin.  The assignment depends only on (cell set, worker count),
    never on timing, so reruns are reproducible."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    ordered = sorted(cells, key=cell_key)
    return [ordered[w::workers] for w in range(workers)]


def _compute_batch(specs: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Worker entry point: compute a batch of cells from their spec dicts."""
    out = []
    for spec in specs:
        cell = SweepCell.make(
            spec["family"],
            spec["family_params"],
            spec["algorithm"],
            spec["algo_params"],
        )
        out.append(compute_cell(cell))
    return out


def run_sweep(
    cells: Sequence[SweepCell],
    cache_dir: Path | str | None = None,
    workers: int | None = None,
    recompute: bool = False,
) -> list[CellResult]:
    """Execute a sweep, computing only uncached cells.

    Parameters
    ----------
    cells:
        The grid, in caller order (results come back in the same order).
    cache_dir:
        Directory of per-cell JSON records; ``None`` disables caching.
    workers:
        Worker process count for the missing cells.  ``None`` picks
        ``min(len(missing), cpu_count)``; values <= 1 compute inline
        (no subprocesses), which is also the fallback when the platform
        refuses to fork.
    recompute:
        Ignore (and overwrite) existing cache entries.
    """
    results: dict[str, CellResult] = {}
    missing: list[SweepCell] = []
    seen: set[str] = set()
    for cell in cells:
        key = cell_key(cell)
        if key in seen:
            continue
        seen.add(key)
        cached = (
            None
            if (recompute or cache_dir is None)
            else load_cached(cache_dir, cell)
        )
        if cached is not None:
            results[key] = CellResult(cell, cached, cached=True)
        else:
            missing.append(cell)

    if missing:
        if workers is None:
            workers = min(len(missing), os.cpu_count() or 1)
        workers = max(1, min(workers, len(missing)))
        if workers == 1:
            records = _compute_batch([c.spec() for c in missing])
        else:
            records = _compute_parallel(missing, workers)
        for record in records:
            cell = SweepCell.make(
                record["family"],
                record["family_params"],
                record["algorithm"],
                record["algo_params"],
            )
            if cache_dir is not None:
                store_cached(cache_dir, record)
            results[record["key"]] = CellResult(cell, record, cached=False)

    ordered: list[CellResult] = []
    emitted: set[str] = set()
    for cell in cells:
        key = cell_key(cell)
        if key not in emitted:
            ordered.append(results[key])
            emitted.add(key)
    return ordered


def _compute_parallel(
    missing: Sequence[SweepCell], workers: int
) -> list[dict[str, Any]]:
    """Fan the missing cells out over processes; inline on any failure."""
    import concurrent.futures as cf
    import multiprocessing as mp

    batches = [
        [c.spec() for c in batch]
        for batch in partition_cells(missing, workers)
        if batch
    ]
    try:
        ctx = mp.get_context("fork")
    except ValueError:
        ctx = mp.get_context()
    try:
        with cf.ProcessPoolExecutor(
            max_workers=len(batches), mp_context=ctx
        ) as pool:
            chunks = list(pool.map(_compute_batch, batches))
    except (OSError, cf.process.BrokenProcessPool):
        chunks = [_compute_batch(batch) for batch in batches]
    return [record for chunk in chunks for record in chunk]


# ----------------------------------------------------------------------
# grid construction helper
# ----------------------------------------------------------------------
def grid(
    family: str,
    algorithms: Sequence[str],
    ns: Sequence[int],
    seeds: Sequence[int] = (0,),
    extra_family_params: Mapping[str, Any] | None = None,
    algo_params: Mapping[str, Any] | None = None,
) -> list[SweepCell]:
    """The standard experiment grid: ``algorithms x ns x seeds`` cells.

    Family parameters that the generator does not accept (``seed`` for
    deterministic families, ``n`` for fixed-size ones) are dropped, so one
    call works across families.
    """
    import inspect

    from ..graphs import generators

    fn = getattr(generators, family, None)
    if family.startswith("_") or not inspect.isfunction(fn):
        raise KeyError(
            f"unknown graph family {family!r}; try `repro-cli families`"
        )
    accepted = set(inspect.signature(fn).parameters)
    cells = []
    for algorithm in algorithms:
        for n in ns:
            for seed in seeds:
                params = {"n": n, "seed": seed, **(extra_family_params or {})}
                params = {k: v for k, v in params.items() if k in accepted}
                cells.append(
                    SweepCell.make(family, params, algorithm, algo_params)
                )
    return cells


@dataclass
class SweepSummary:
    """Headline counters of one :func:`run_sweep` invocation."""

    total: int = 0
    computed: int = 0
    cached: int = 0
    results: list[CellResult] = field(default_factory=list)


def run_sweep_summarized(
    cells: Sequence[SweepCell],
    cache_dir: Path | str | None = None,
    workers: int | None = None,
    recompute: bool = False,
) -> SweepSummary:
    """:func:`run_sweep` plus computed-vs-cached accounting (CLI + tests)."""
    results = run_sweep(cells, cache_dir, workers, recompute)
    cached = sum(1 for r in results if r.cached)
    return SweepSummary(
        total=len(results),
        computed=len(results) - cached,
        cached=cached,
        results=results,
    )
