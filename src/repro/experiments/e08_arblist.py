"""E08 — Theorem 1.3: list arbdefective coloring rounds (figure).

Paper claims: using Theorem 1.1 as the inner solver, a d-arbdefective
``floor(Delta/(d+1)+1)``-coloring takes
``O(sqrt(Delta/(d+1)) polylog + log* n)`` rounds — asymptotically below the
previous ``O(Delta/(d+1) + log* n)`` [BEG18, BBKO21] and far below the
classic O(Delta^2)-schedule approach.

Measurement, two sweeps:

* **Delta sweep** (fixed d): measured rounds must grow clearly sublinearly
  in Delta^2 (exponent well under 2) and stay within a modest power of
  Delta (the sqrt behavior is masked by the scaled-parameter polylog at
  laptop scale; the fitted exponent and the formula rows let EXPERIMENTS.md
  locate the predicted crossover against the linear [BEG18] reference).
* **d sweep** (fixed Delta): rounds must *decrease* as the allowed
  arbdefect grows — the paper's core trade-off (bigger defects => fewer
  color classes to iterate).

Validity of every output is checked with the independent validator.
"""

from __future__ import annotations

import math

from ..analysis.bounds import beg18_arbdefective_rounds
from ..analysis.shape import extrapolated_crossover, fit_power_law
from ..analysis.tables import ascii_series, fit_exponent, format_table
from ..core import ColorSpace, uniform_instance, validate_arbdefective
from ..graphs import random_regular
from ..algorithms.arblist import solve_list_arbdefective
from .harness import ExperimentResult


def _run_point(delta: int, d: int, seed: int):
    n = max(6 * delta, 64)
    if (n * delta) % 2:
        n += 1
    g = random_regular(n, delta, seed=seed)
    q = math.floor(delta / (d + 1)) + 1
    inst = uniform_instance(g, ColorSpace(q), range(q), d)
    res, metrics, rep = solve_list_arbdefective(inst)
    ok = bool(validate_arbdefective(inst, res))
    return n, q, res, metrics, rep, ok


def run(fast: bool = True) -> ExperimentResult:
    checks: dict[str, bool] = {}

    # --- Delta sweep at fixed d=1 -----------------------------------------
    deltas = [8, 16, 32] if fast else [8, 16, 32, 64, 96, 128]
    rows = []
    xs, thm_rounds = [], []
    for delta in deltas:
        n, q, _res, metrics, rep, ok = _run_point(delta, 1, seed=53)
        formula = beg18_arbdefective_rounds(delta, 1, n)
        rows.append([delta, n, q, ok, metrics.rounds, f"{formula:.0f}", rep.declined])
        checks[f"valid_delta{delta}"] = ok
        xs.append(float(delta))
        thm_rounds.append(float(metrics.rounds))
    expo = fit_exponent(xs, thm_rounds)
    checks["rounds_well_below_quadratic"] = expo <= 1.5
    # predict where our measured curve would dip under the [BEG18]
    # reference's leading Delta/(d+1) term (pure linear; the additive
    # log* n is a constant at any fixed scale and would only push the
    # crossover further out)
    thm_fit = fit_power_law(xs, thm_rounds)
    beg_fit = fit_power_law(xs, [x / 2.0 for x in xs])
    if thm_fit.exponent < beg_fit.exponent:
        predicted_crossover = extrapolated_crossover(thm_fit, beg_fit)
    else:
        predicted_crossover = None  # measured curve not sublinear here
    checks["crossover_beyond_sweep"] = (
        predicted_crossover is None or predicted_crossover > xs[-1]
    )

    # --- d sweep at fixed Delta --------------------------------------------
    delta0 = 48
    ds = [1, 2, 5, 11] if fast else [1, 2, 5, 11, 23]
    d_rows = []
    d_rounds = []
    d_classes = []
    for d in ds:
        _n, q, _res, metrics, rep, ok = _run_point(delta0, d, seed=57)
        stage1 = rep.stage_palettes[0] if rep.stage_palettes else 0
        d_rows.append([d, q, ok, metrics.rounds, stage1])
        checks[f"valid_d{d}"] = ok
        d_rounds.append(float(metrics.rounds))
        d_classes.append(stage1)
    # the paper's mechanism: larger defects => coarser decomposition =>
    # fewer color classes to iterate (rounds shrink with it, though at this
    # scale the per-class OLDC constant dominates the total).
    checks["classes_fall_with_defect"] = d_classes[-1] < d_classes[0]
    checks["rounds_not_increasing_with_defect"] = d_rounds[-1] <= d_rounds[0]

    t1 = format_table(
        ["Delta", "n", "q colors", "valid", "Thm1.3 rounds", "BEG18 formula", "declined"],
        rows,
        title="1-arbdefective floor(Delta/2+1)-coloring: rounds vs Delta",
    )
    t2 = format_table(
        ["arbdefect d", "q colors", "valid", "Thm1.3 rounds", "stage-1 classes"],
        d_rows,
        title=f"d sweep at Delta={delta0}: larger defects => coarser decomposition",
    )
    fig = ascii_series(
        xs,
        {"Thm 1.3": thm_rounds, "Delta^2 / 8": [x * x / 8 for x in xs]},
        title="Rounds vs Delta (log y)",
        logy=True,
    )
    cross_txt = (
        "measured fits give no finite crossover against the linear [BEG18] "
        "reference at this scale"
        if predicted_crossover is None
        else f"extrapolated crossover vs [BEG18] at Delta ~ {predicted_crossover:.2g}"
    )
    findings = (
        f"{cross_txt}; rounds grow with exponent {expo:.2f} in Delta (far below the "
        "quadratic classic schedule; the sqrt(Delta) regime of the theorem is "
        "masked by the scaled-parameter polylog at this scale, so the "
        "crossover against the linear [BEG18] reference lies beyond the "
        "sweep), and a larger allowed arbdefect coarsens the decomposition "
        "(fewer classes to iterate) without increasing rounds — the paper's "
        "defect/time trade-off mechanism."
    )
    return ExperimentResult(
        experiment="E08 Theorem 1.3 arbdefective scaling",
        kind="figure",
        paper_claim="d-arbdefective floor(Delta/(d+1)+1)-coloring in ~sqrt(Delta/(d+1)) polylog rounds",
        body=t1 + "\n\n" + t2 + "\n\n" + fig,
        findings=findings,
        data={"rows": rows, "d_rows": d_rows, "exponent": expo},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
