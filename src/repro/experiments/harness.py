"""Experiment harness: a uniform result container + runner registry.

Every experiment module ``eNN_*`` exposes::

    run(fast: bool = True) -> ExperimentResult

``fast=True`` uses scaled-down sweeps (seconds; what the test suite and
benchmarks exercise); ``fast=False`` the full sweeps reported in
EXPERIMENTS.md.  ``ExperimentResult.render()`` prints the table / ASCII
figure; ``.data`` holds the raw numbers; ``.findings`` summarizes the
paper-vs-measured comparison in one or two sentences; ``.checks`` is a dict
of named boolean assertions (the shape claims) that tests assert on.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class ExperimentResult:
    """Outcome of one experiment."""

    experiment: str
    kind: str  # "table" | "figure"
    paper_claim: str
    body: str  # rendered table / ascii figure
    findings: str
    data: dict[str, Any] = field(default_factory=dict)
    checks: dict[str, bool] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"=== {self.experiment} ({self.kind}) ===",
            f"paper claim: {self.paper_claim}",
            "",
            self.body,
            "",
            f"findings: {self.findings}",
        ]
        if self.checks:
            lines.append(
                "checks: "
                + ", ".join(f"{k}={'PASS' if v else 'FAIL'}" for k, v in self.checks.items())
            )
        return "\n".join(lines)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values())


EXPERIMENTS: dict[str, str] = {
    "E01": "repro.experiments.e01_existence",
    "E02": "repro.experiments.e02_linial",
    "E03": "repro.experiments.e03_defective",
    "E04": "repro.experiments.e04_arbdefective",
    "E05": "repro.experiments.e05_oldc",
    "E06": "repro.experiments.e06_reduction",
    "E07": "repro.experiments.e07_threshold",
    "E08": "repro.experiments.e08_arblist",
    "E09": "repro.experiments.e09_congest",
    "E10": "repro.experiments.e10_p2",
    "E11": "repro.experiments.e11_crossover",
    "E12": "repro.experiments.e12_internal",
    "E13": "repro.experiments.e13_frontier",
    "E14": "repro.experiments.e14_scale",
    "E15": "repro.experiments.e15_lowerbound",
    "E16": "repro.experiments.e16_resilience",
    "A01": "repro.experiments.a01_ablations",
}


def get_runner(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Import and return the ``run`` function of an experiment by id."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {experiment_id!r}; options: {sorted(EXPERIMENTS)}")
    module = importlib.import_module(EXPERIMENTS[key])
    return module.run


def run_all(fast: bool = True) -> list[ExperimentResult]:
    """Run every experiment; returns results in id order."""
    return [get_runner(eid)(fast=fast) for eid in sorted(EXPERIMENTS)]


def main(argv: list[str] | None = None) -> None:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description="run reproduction experiments")
    parser.add_argument("ids", nargs="*", default=sorted(EXPERIMENTS), help="E01..E11")
    parser.add_argument("--full", action="store_true", help="full (slow) sweeps")
    args = parser.parse_args(argv)
    for eid in args.ids:
        result = get_runner(eid)(fast=not args.full)
        print(result.render())
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
