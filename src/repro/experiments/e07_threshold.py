"""E07 — The list-size condition of Theorem 1.1 (figure).

Paper claim: the main OLDC algorithm works whenever
``sum_x (d_v(x)+1)^2 >= alpha beta_v^2 kappa`` for a sufficiently large
constant; i.e. validity as a function of the condition slack
``min_v sum (d+1)^2 / beta_v^2`` has a *threshold* shape: reliable success
above some constant, failures appearing as the slack approaches zero.

Measurement: sweep the slack over ~2 decades on a fixed digraph family (5
seeds each); record the fraction of valid runs and the max realized defect
excess.  The curve must be monotone-ish with success 100% at the top of
the sweep — locating the practical constant for the scaled parameters
(DESIGN.md §3.2).
"""

from __future__ import annotations

from ..analysis.tables import ascii_series, format_table
from ..core import validate_oldc
from ..algorithms.linial import run_linial
from ..algorithms.oldc_main import solve_oldc_main
from .e05_oldc import _make_instance
from .harness import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    # Zero-defect instances make the condition bind exactly: the list size
    # *is* the budget sum, so slack = |L_v| / beta_v^2 and the machinery's
    # free-color pigeonhole has no defect cushion to hide behind.
    slacks = [0.15, 1.0, 15.0, 40.0] if fast else [0.1, 0.2, 0.35, 0.5, 1.0, 2.0, 4.0, 8.0, 15.0, 40.0]
    seeds = [31, 37] if fast else [31, 37, 41, 43, 47]
    n = 60 if fast else 100
    rows = []
    xs, ys = [], []
    checks: dict[str, bool] = {}
    for slack in slacks:
        good = 0
        total = 0
        for s in seeds:
            g, inst = _make_instance(
                n, 0.15, seed=s, slack=slack, space_size=64,
                max_defect=0, tight_space=True,
            )
            pre, _m, _p = run_linial(g)
            res, _metrics, _rep = solve_oldc_main(inst, pre.assignment)
            total += 1
            if validate_oldc(inst, res):
                good += 1
        rate = good / total
        rows.append([slack, f"{good}/{total}", f"{100*rate:.0f}%"])
        xs.append(slack)
        ys.append(rate)
    checks["top_of_sweep_reliable"] = ys[-1] == 1.0
    checks["bottom_of_sweep_fails"] = ys[0] < 1.0
    checks["roughly_monotone"] = all(
        ys[i + 1] >= ys[i] - 0.34 for i in range(len(ys) - 1)
    )
    table = format_table(
        ["slack (sum(d+1)^2 / beta^2)", "valid runs", "rate"],
        rows,
        title=f"Theorem 1.1 feasibility frontier (n={n}, scaled constants)",
    )
    fig = ascii_series(xs, {"success rate": ys}, title="Success rate vs condition slack")
    findings = (
        "Validity shows the predicted threshold behavior: reliable success "
        "above the frontier, failures as the budget is starved.  Notably the "
        "measured frontier sits around slack ~0.5-1 — far below the paper's "
        "worst-case alpha*kappa requirement — because the risk-minimizing "
        "color picks collide far less often than the worst-case accounting "
        "assumes on random instances."
    )
    return ExperimentResult(
        experiment="E07 Theorem 1.1 condition threshold",
        kind="figure",
        paper_claim="algorithm valid when sum (d+1)^2 >= alpha beta^2 kappa (alpha 'sufficiently large')",
        body=table + "\n\n" + fig,
        findings=findings,
        data={"slacks": slacks, "rates": ys},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
