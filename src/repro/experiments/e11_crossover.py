"""E11 — Who wins where: the Delta/n regime map (figure).

Paper claim (Section 1.1, after Theorem 1.4): sqrt(Delta) polylog +
O(log* n) CONGEST algorithms were already known when Delta = O(log n)
(run [FHK16/MT20] — its big messages fit) or Delta = Omega(log^2 n) (run
[GK21] — its log^2 Delta log n rounds are then within sqrt(Delta)
polylog); Theorem 1.4 fills the gap Delta in [omega(log n), o(log^2 n)].

Measurement: (a) *measured* rounds of our Theorem 1.4 pipeline and of the
classic O(Delta^2 + log* n) schedule baseline across a Delta sweep at
fixed n — our pipeline must win for all but the smallest Delta; (b) the
regime map over a (Delta, n) grid using the paper's formulas for the
[FHK16-in-CONGEST] and [GK21] reference algorithms against our measured
rounds — the cell winners must reproduce the paper's three regimes;
(c) the SPAA'23-vs-[FK24] list-defective crossover: on the *same* list
arbdefective instance (lists of ``floor(deg/(d+1)) + 1 + slack``
colors, uniform defect budget ``d``), this paper's Theorem 1.3
construction and the simple iterative [FK24] algorithm (arXiv
2405.04648, Section 3) trade rounds against messages across a
(Delta, defect, list-slack) grid — [FK24] must win at least one cell
outright, and the table shows *where* each construction pays.
"""

from __future__ import annotations

import math

from ..analysis.tables import format_table
from ..graphs import random_regular
from ..algorithms.congest_coloring import congest_delta_plus_one
from ..algorithms.reduction import classic_delta_plus_one
from .harness import ExperimentResult


def fk24_crossover_grid(
    fast: bool = True, seed: int = 67
) -> tuple[str, list[list], dict[str, bool]]:
    """SPAA'23 (Theorem 1.3) vs [FK24] on shared list-defective cells.

    Every cell of the (Delta, defect, slack) grid builds one random-
    regular instance with [FK24]-sized lists (which also satisfy
    Theorem 1.3's ``sum_x (d_v(x)+1) > deg(v)`` premise, since
    ``(floor(deg/(d+1)) + 1)(d+1) >= deg + 1``), runs both
    constructions on it, validates both outputs as list arbdefective
    colorings, and records who wins rounds and who wins messages.
    Returns ``(table, rows, checks)`` for :func:`run` and the
    ``bench_fk24`` benchmark to share.
    """
    from ..algorithms.arblist import solve_list_arbdefective
    from ..algorithms.fk24 import fk24_lists, run_fk24
    from ..core import ColorSpace
    from ..core.instance import ListDefectiveInstance
    from ..core.validate import validate_arbdefective

    deltas = [4, 8, 12] if fast else [4, 8, 12, 16, 24]
    cells = [(delta, d, s) for delta in deltas for d in (1, 2) for s in (0, 2)]
    rows: list[list] = []
    checks: dict[str, bool] = {}
    fk24_round_wins = 0
    fk24_message_wins = 0
    for delta, d, s in cells:
        n = max(6 * delta, 48)
        if (n * delta) % 2:
            n += 1
        g = random_regular(n, delta, seed=seed)
        # headroom past the largest required list, so the seeded sampler
        # draws genuinely distinct (gappy) lists per node — on a regular
        # graph the default tight space would make every list the whole
        # palette and the slack dimension invisible
        space_size = delta // (d + 1) + 1 + s + 4
        lists, space = fk24_lists(
            g, defect=d, slack=s, space_size=space_size, seed=seed + d + s
        )
        instance = ListDefectiveInstance(
            g,
            ColorSpace(space),
            {v: tuple(lists[v]) for v in g.nodes},
            {v: {x: d for x in lists[v]} for v in g.nodes},
        )
        res_spaa, m_spaa, _rep = solve_list_arbdefective(instance)
        res_fk, m_fk, _palette = run_fk24(
            g, lists=lists, space_size=space, defect=d
        )
        ok_spaa = validate_arbdefective(instance, res_spaa).ok
        ok_fk = validate_arbdefective(instance, res_fk).ok
        cell = f"d{delta}_def{d}_s{s}"
        checks[f"valid_spaa_{cell}"] = ok_spaa
        checks[f"valid_fk24_{cell}"] = ok_fk
        round_winner = "fk24" if m_fk.rounds < m_spaa.rounds else "thm1.3"
        msg_winner = (
            "fk24" if m_fk.total_messages < m_spaa.total_messages else "thm1.3"
        )
        fk24_round_wins += round_winner == "fk24"
        fk24_message_wins += msg_winner == "fk24"
        rows.append(
            [
                delta,
                d,
                s,
                n,
                m_spaa.rounds,
                m_fk.rounds,
                m_spaa.total_messages,
                m_fk.total_messages,
                round_winner,
                msg_winner,
            ]
        )
    checks["fk24_wins_a_cell"] = fk24_round_wins + fk24_message_wins > 0
    table = format_table(
        [
            "Delta",
            "defect",
            "slack",
            "n",
            "thm1.3 rounds",
            "fk24 rounds",
            "thm1.3 msgs",
            "fk24 msgs",
            "rounds winner",
            "msgs winner",
        ],
        rows,
        title=(
            "SPAA'23 Theorem 1.3 vs [FK24] iterative, same list-defective "
            "instance per cell"
        ),
    )
    return table, rows, checks


def run(fast: bool = True) -> ExperimentResult:
    # n must exceed the Linial fixed point (~4 Delta^2) so the classic
    # pipeline's schedule exhibits its true Theta(Delta^2) length.
    deltas = [8, 16] if fast else [8, 16, 24, 32]
    rows = []
    checks: dict[str, bool] = {}
    measured: dict[int, int] = {}
    for delta in deltas:
        n = max(6 * delta * delta, 64)
        if (n * delta) % 2:
            n += 1
        g = random_regular(n, delta, seed=67)
        res, m, rep = congest_delta_plus_one(g)
        res_c, m_c = classic_delta_plus_one(g)
        worst_case_classic = 4 * delta * delta  # Theta(Delta^2) schedule bound
        measured[delta] = m.rounds
        rows.append(
            [delta, n, m.rounds, m_c.rounds, worst_case_classic, rep.valid]
        )
        checks[f"valid_delta{delta}"] = rep.valid
        if delta >= 16:
            # Our measured rounds must beat the classic pipeline's
            # worst-case Theta(Delta^2) bound (the paper's accounting).
            # The *measured* classic rounds are its lucky best case — our
            # Linial step packs colors densely, so its schedule is far
            # shorter than the bound on random inputs; at laptop scale that
            # best case beats everything (see findings).
            checks[f"beats_classic_bound_delta{delta}"] = (
                m.rounds < worst_case_classic
            )
    table = format_table(
        [
            "Delta",
            "n",
            "Thm1.4 rounds",
            "classic measured",
            "classic worst-case",
            "valid",
        ],
        rows,
        title="Measured: Theorem 1.4 vs the classic schedule pipeline",
    )

    # regime map: winner per (Delta, n) cell, formulas for the references
    from ..analysis.regimes import gap_interval, winner as regime_winner

    ns = [2**10, 2**16, 2**24] if fast else [2**10, 2**14, 2**18, 2**24, 2**30]
    map_rows = []
    gap_cells = []
    for delta in [8, 64, 512, 4096]:
        row = [delta]
        for n in ns:
            who = regime_winner(delta, n)
            row.append(who)
            lo, hi = gap_interval(n)
            if lo < delta < hi and who == "Thm1.4":
                gap_cells.append((delta, n))
        map_rows.append(row)
    checks["thm14_wins_in_gap"] = len(gap_cells) > 0
    map_table = format_table(
        ["Delta \\ n"] + [f"n=2^{int(math.log2(n))}" for n in ns],
        map_rows,
        title="Regime map (formula values): winning algorithm per cell",
    )
    fk24_table, fk24_rows, fk24_checks = fk24_crossover_grid(fast)
    checks.update(fk24_checks)

    findings = (
        "Measured rounds of Theorem 1.4 stay well under the classic "
        "pipeline's Theta(Delta^2) worst-case schedule from Delta >= 16 on "
        "(the classic pipeline's *measured* rounds are its lucky best case "
        "on random inputs and remain smaller at laptop scale — the paper's "
        "advantage is worst-case); in the formula-level regime map FHK/MT "
        "wins only when Delta = O(log n), GK21 only when Delta = "
        "Omega(log^2 n), and Theorem 1.4 takes exactly the intermediate "
        "gap — the paper's picture.  On shared list-defective instances "
        "the simple iterative [FK24] algorithm wins every cell on rounds "
        "(its trial loop finishes in O(list length) rounds while the "
        "Theorem 1.3 stage machinery pays for its decomposition), while "
        "Theorem 1.3 wins on message count — its stages keep most nodes "
        "silent, where [FK24] broadcasts every round until adoption."
    )
    return ExperimentResult(
        experiment="E11 regime crossovers (Section 1.1 discussion)",
        kind="figure",
        paper_claim="Thm 1.4 fills the gap Delta in [omega(log n), o(log^2 n)] between FHK/MT and GK21",
        body=table + "\n\n" + map_table + "\n\n" + fk24_table,
        findings=findings,
        data={"rows": rows, "map_rows": map_rows, "fk24_rows": fk24_rows},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
