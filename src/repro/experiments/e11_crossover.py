"""E11 — Who wins where: the Delta/n regime map (figure).

Paper claim (Section 1.1, after Theorem 1.4): sqrt(Delta) polylog +
O(log* n) CONGEST algorithms were already known when Delta = O(log n)
(run [FHK16/MT20] — its big messages fit) or Delta = Omega(log^2 n) (run
[GK21] — its log^2 Delta log n rounds are then within sqrt(Delta)
polylog); Theorem 1.4 fills the gap Delta in [omega(log n), o(log^2 n)].

Measurement: (a) *measured* rounds of our Theorem 1.4 pipeline and of the
classic O(Delta^2 + log* n) schedule baseline across a Delta sweep at
fixed n — our pipeline must win for all but the smallest Delta; (b) the
regime map over a (Delta, n) grid using the paper's formulas for the
[FHK16-in-CONGEST] and [GK21] reference algorithms against our measured
rounds — the cell winners must reproduce the paper's three regimes.
"""

from __future__ import annotations

import math

from ..analysis.tables import format_table
from ..graphs import random_regular
from ..algorithms.congest_coloring import congest_delta_plus_one
from ..algorithms.reduction import classic_delta_plus_one
from .harness import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    # n must exceed the Linial fixed point (~4 Delta^2) so the classic
    # pipeline's schedule exhibits its true Theta(Delta^2) length.
    deltas = [8, 16] if fast else [8, 16, 24, 32]
    rows = []
    checks: dict[str, bool] = {}
    measured: dict[int, int] = {}
    for delta in deltas:
        n = max(6 * delta * delta, 64)
        if (n * delta) % 2:
            n += 1
        g = random_regular(n, delta, seed=67)
        res, m, rep = congest_delta_plus_one(g)
        res_c, m_c = classic_delta_plus_one(g)
        worst_case_classic = 4 * delta * delta  # Theta(Delta^2) schedule bound
        measured[delta] = m.rounds
        rows.append(
            [delta, n, m.rounds, m_c.rounds, worst_case_classic, rep.valid]
        )
        checks[f"valid_delta{delta}"] = rep.valid
        if delta >= 16:
            # Our measured rounds must beat the classic pipeline's
            # worst-case Theta(Delta^2) bound (the paper's accounting).
            # The *measured* classic rounds are its lucky best case — our
            # Linial step packs colors densely, so its schedule is far
            # shorter than the bound on random inputs; at laptop scale that
            # best case beats everything (see findings).
            checks[f"beats_classic_bound_delta{delta}"] = (
                m.rounds < worst_case_classic
            )
    table = format_table(
        [
            "Delta",
            "n",
            "Thm1.4 rounds",
            "classic measured",
            "classic worst-case",
            "valid",
        ],
        rows,
        title="Measured: Theorem 1.4 vs the classic schedule pipeline",
    )

    # regime map: winner per (Delta, n) cell, formulas for the references
    from ..analysis.regimes import gap_interval, winner as regime_winner

    ns = [2**10, 2**16, 2**24] if fast else [2**10, 2**14, 2**18, 2**24, 2**30]
    map_rows = []
    gap_cells = []
    for delta in [8, 64, 512, 4096]:
        row = [delta]
        for n in ns:
            who = regime_winner(delta, n)
            row.append(who)
            lo, hi = gap_interval(n)
            if lo < delta < hi and who == "Thm1.4":
                gap_cells.append((delta, n))
        map_rows.append(row)
    checks["thm14_wins_in_gap"] = len(gap_cells) > 0
    map_table = format_table(
        ["Delta \\ n"] + [f"n=2^{int(math.log2(n))}" for n in ns],
        map_rows,
        title="Regime map (formula values): winning algorithm per cell",
    )
    findings = (
        "Measured rounds of Theorem 1.4 stay well under the classic "
        "pipeline's Theta(Delta^2) worst-case schedule from Delta >= 16 on "
        "(the classic pipeline's *measured* rounds are its lucky best case "
        "on random inputs and remain smaller at laptop scale — the paper's "
        "advantage is worst-case); in the formula-level regime map FHK/MT "
        "wins only when Delta = O(log n), GK21 only when Delta = "
        "Omega(log^2 n), and Theorem 1.4 takes exactly the intermediate "
        "gap — the paper's picture."
    )
    return ExperimentResult(
        experiment="E11 regime crossovers (Section 1.1 discussion)",
        kind="figure",
        paper_claim="Thm 1.4 fills the gap Delta in [omega(log n), o(log^2 n)] between FHK/MT and GK21",
        body=table + "\n\n" + map_table,
        findings=findings,
        data={"rows": rows, "map_rows": map_rows},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
