"""E13 — The colors/rounds frontier: [Bar16] vs Theorem 1.4 (figure).

Paper context (Section 1, "List Coloring"): Barenboim's technique gives a
``(1+eps)Delta``-coloring in ``O(sqrt(Delta) + log* n)`` rounds and was —
via its ``Delta^{3/4}`` variant — the fastest known ``f(Delta)+O(log* n)``
CONGEST algorithm for ``(Delta+1)``-coloring before this paper.  The
paper's Theorem 1.4 removes the palette blow-up: ``Delta+1`` colors at a
polylog-factor round cost.

Measurement: on a fixed graph, sweep [Bar16]'s palette factor; record
rounds and colors used, next to Theorem 1.4's (Delta+1) point.  Expected
shape: [Bar16] gets faster as the palette grows (larger eps => larger
arbdefect => fewer classes) and is faster than Theorem 1.4 at factor 2,
while only Theorem 1.4 reaches the Delta+1 palette.  Both outputs must be
valid everywhere; Delta sweep confirms both scale sublinearly-in-Delta^2.
"""

from __future__ import annotations

from ..analysis.tables import ascii_series, format_table
from ..core import validate_proper_coloring
from ..graphs import random_regular
from ..algorithms.barenboim import barenboim_coloring
from ..algorithms.congest_coloring import congest_delta_plus_one
from .harness import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    checks: dict[str, bool] = {}
    delta = 24 if fast else 48
    n = max(6 * delta, 64)
    g = random_regular(n, delta, seed=401)

    res14, m14, rep14 = congest_delta_plus_one(g)
    checks["thm14_valid"] = rep14.valid
    rows = [["Thm 1.4", delta + 1, res14.num_colors(), m14.rounds]]

    from ..algorithms.linear_in_delta import linear_in_delta_coloring

    res_lin, m_lin, _rep_lin = linear_in_delta_coloring(g)
    checks["be09_valid"] = bool(validate_proper_coloring(g, res_lin))
    checks["be09_delta_plus_one"] = res_lin.num_colors() <= delta + 1
    rows.append(["BE09/Kuh09", delta + 1, res_lin.num_colors(), m_lin.rounds])

    factors = [1.25, 1.5, 2.0] if fast else [1.1, 1.25, 1.5, 2.0, 3.0]
    bar_rounds = []
    for f in factors:
        res, m, rep = barenboim_coloring(g, palette_factor=f)
        ok = bool(validate_proper_coloring(g, res))
        checks[f"bar16_valid_f{f}"] = ok
        rows.append([f"Bar16 x{f}", rep.palette, res.num_colors(), m.rounds])
        bar_rounds.append(float(m.rounds))
    # larger palettes must not slow [Bar16] down
    checks["bar16_faster_with_bigger_palette"] = bar_rounds[-1] <= bar_rounds[0]
    # the paper's trade: at factor 2, Bar16 beats Thm 1.4 on rounds but
    # only Thm 1.4 reaches the Delta+1 palette
    checks["bar16_x2_faster"] = bar_rounds[-1] < m14.rounds
    checks["only_thm14_reaches_delta_plus_one"] = res14.num_colors() <= delta + 1

    table = format_table(
        ["algorithm", "palette", "colors used", "rounds"],
        rows,
        title=f"Colors/rounds frontier on a {delta}-regular graph (n={n})",
    )
    fig = ascii_series(
        [float(f) for f in factors],
        {"Bar16 rounds": bar_rounds, "Thm 1.4 rounds": [float(m14.rounds)] * len(factors)},
        title="Rounds vs palette factor",
    )
    findings = (
        f"The frontier the paper describes: [Bar16] at palette 2*Delta runs "
        f"{bar_rounds[-1]:.0f} rounds vs Theorem 1.4's {m14.rounds} and speeds "
        "up further as the palette grows, but only the Delta+1 algorithms "
        "(Theorem 1.4 and the O(Delta)-round [BE09/Kuh09] classic at "
        f"{m_lin.rounds} rounds here — its linear-in-Delta regime needs far "
        "larger Delta to bind) reach the tight palette; the paper's "
        "contribution is removing the (1+eps) blow-up at a polylog round "
        "cost."
    )
    return ExperimentResult(
        experiment="E13 colors/rounds frontier ([Bar16] vs Thm 1.4)",
        kind="figure",
        paper_claim="prior CONGEST f(Delta)+log* n algorithms need (1+eps)Delta colors for sqrt(Delta) rounds; Thm 1.4 reaches Delta+1",
        body=table + "\n\n" + fig,
        findings=findings,
        data={"rows": rows},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
