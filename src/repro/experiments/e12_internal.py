"""E12 — Internal computation costs (Appendix C of the paper) (table).

Paper claims (Appendix C): the expensive *internal* step is the zero-round
P2 greedy, whose cost is ``O(|S|^2)`` with ``|S|`` exponential in the list
size; combining Theorem 1.1 with the color-space reduction at
``p = Delta^epsilon`` makes internal computation sublinear in n (for the
Theorem 1.4 pipeline with Delta <= log^2 n).

Measurement:

* **exact mode** — wall-clock of the literal greedy as the list size
  grows at toy parameters: the measured cost must blow up super-
  polynomially (doubling the list multiplies the cost by orders of
  magnitude), matching the |S|^2 analysis and motivating the substitution
  of DESIGN.md §3.1.
* **seeded mode** — per-type family derivation cost vs list size: near-
  linear, which is what makes the reproduction runnable.
* **reduction effect** — end-to-end wall-clock of the Theorem 1.1 solver
  with and without Corollary 4.2's reduction on a large color space: the
  reduction must not blow up the internal cost (the paper's point is that
  it *reduces* the per-level list sizes the internal machinery touches).
"""

from __future__ import annotations

import itertools
import time

from ..analysis.tables import format_table
from ..algorithms.colorspace_reduction import corollary_4_2_p, solve_with_reduction
from ..algorithms.linial import run_linial
from ..algorithms.mt_selection import NodeType, exact_greedy_assignment, seeded_family
from ..algorithms.oldc_main import solve_oldc_main
from .e05_oldc import _make_instance
from .harness import ExperimentResult


def _time_exact(space_size: int, list_len: int) -> float:
    types = [
        NodeType(c, lst)
        for lst in itertools.combinations(range(space_size), list_len)
        for c in range(2)
    ]
    t0 = time.perf_counter()
    exact_greedy_assignment(types, k=2, k_prime=2, tau=3, tau_prime=2)
    return time.perf_counter() - t0


def run(fast: bool = True) -> ExperimentResult:
    checks: dict[str, bool] = {}

    # --- exact greedy blow-up ------------------------------------------
    # growing universes: the type count is 2 * C(|C|, l)
    shapes = [(5, 4), (6, 4), (7, 4)] if fast else [(5, 4), (6, 4), (7, 4), (8, 4)]
    rows = []
    times = []
    for space_size, list_len in shapes:
        t = _time_exact(space_size, list_len)
        rows.append([f"|C|={space_size} l={list_len}", f"{t*1000:.1f} ms"])
        times.append(t)
    checks["exact_cost_blows_up"] = times[-1] > 5 * times[0]
    t_exact = format_table(
        ["universe", "greedy wall"],
        rows,
        title="Exact P2 greedy cost (toy parameters; Appendix C's |S|^2)",
    )

    # --- seeded family cost ------------------------------------------------
    rows = []
    seeded_times = []
    for length in [50, 200, 800] if fast else [50, 200, 800, 3200]:
        t = NodeType(0, tuple(range(length)))
        t0 = time.perf_counter()
        for _ in range(20):
            seeded_family(t, min(24, length), 16, seed=length)
        dt = (time.perf_counter() - t0) / 20
        rows.append([length, f"{dt*1e6:.0f} us"])
        seeded_times.append(dt)
    checks["seeded_cost_tame"] = seeded_times[-1] < 200 * seeded_times[0]
    t_seeded = format_table(
        ["list size", "family derivation"],
        rows,
        title="Seeded P2 family cost (the DESIGN.md §3.1 substitution)",
    )

    # --- end-to-end with and without reduction ------------------------------
    n = 50 if fast else 100
    g, inst = _make_instance(n, 0.15, seed=311, slack=35.0, space_size=1024)
    pre, _m, _p = run_linial(g)

    def base(instance, init):
        return solve_oldc_main(instance, init)

    t0 = time.perf_counter()
    base(inst, pre.assignment)
    direct = time.perf_counter() - t0
    p = corollary_4_2_p(inst.space.size, 2)
    t0 = time.perf_counter()
    solve_with_reduction(inst, pre.assignment, base, p=p)
    reduced = time.perf_counter() - t0
    checks["reduction_internal_cost_bounded"] = reduced < 25 * direct
    t_e2e = format_table(
        ["pipeline", "wall"],
        [["Thm 1.1 direct", f"{direct*1000:.0f} ms"],
         [f"Thm 1.1 + Cor 4.2 (p={p})", f"{reduced*1000:.0f} ms"]],
        title=f"End-to-end internal cost, |C|={inst.space.size}, n={n}",
    )

    findings = (
        "The literal P2 greedy's cost explodes exactly as Appendix C's "
        "|S|^2 analysis predicts (orders of magnitude per unit of list "
        "length), while the seeded substitution stays near-linear; the "
        "Corollary 4.2 reduction keeps end-to-end internal cost of the "
        "Theorem 1.1 solver bounded on large color spaces."
    )
    return ExperimentResult(
        experiment="E12 internal computation (Appendix C)",
        kind="table",
        paper_claim="P2 greedy costs O(|S|^2), super-polynomial in list size; color-space reduction tames internal computation",
        body=t_exact + "\n\n" + t_seeded + "\n\n" + t_e2e,
        findings=findings,
        data={"exact_times": times, "seeded_times": seeded_times},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
