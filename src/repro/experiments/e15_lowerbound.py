"""E15 — Linial's lower-bound machinery: ring neighborhood graphs (table).

Paper context (Section 1, [Lin87]): coloring a ring with O(1) colors needs
Omega(log* n) rounds.  The proof identifies ``t``-round deterministic ring
algorithms with proper colorings of the neighborhood graph ``N_t(m)``, so
``chi(N_t(m))`` is an *unconditional* palette lower bound at ``t`` rounds.

Measurement: build ``N_0(m)`` and ``N_1(m)`` explicitly for small id
spaces; verify

* ``chi(N_0(m)) = m`` — zero rounds cannot beat the trivial id-coloring;
* ``chi(N_1(m)) >= 3`` for every ``m >= 3`` (no 1-round 2-coloring exists,
  matching the parity obstruction) with the exact value computed by
  backtracking at small m;
* our own Linial implementation is *consistent* with the bound: a 1-round
  run from an id space of size m uses a palette that a 1-round algorithm
  is allowed to use (>= the exact chi).
"""

from __future__ import annotations

from ..analysis.lowerbound import (
    clique_lower_bound,
    greedy_chromatic_upper,
    is_k_colorable,
    neighborhood_graph_n0,
    neighborhood_graph_n1,
    one_round_color_lower_bound,
)
from ..analysis.tables import format_table
from .harness import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    checks: dict[str, bool] = {}
    ms = [3, 4, 5] if fast else [3, 4, 5, 6]
    rows = []
    for m in ms:
        n0 = neighborhood_graph_n0(m)
        # N_0 is K_m: chi = m exactly
        chi0 = greedy_chromatic_upper(n0)
        checks[f"n0_chi_equals_m_{m}"] = chi0 == m
        n1 = neighborhood_graph_n1(m)
        lo = clique_lower_bound(n1)
        hi = greedy_chromatic_upper(n1)
        if m <= 5:
            exact = one_round_color_lower_bound(m)
            exact_txt = str(exact)
            checks[f"n1_no_two_coloring_m{m}"] = exact >= 3
            checks[f"n1_bounds_bracket_m{m}"] = lo <= exact <= hi
        else:
            two_ok = is_k_colorable(n1, 2)
            exact_txt = f"[{max(lo, 3 if two_ok is False else lo)}, {hi}]"
            if two_ok is not None:
                checks[f"n1_no_two_coloring_m{m}"] = two_ok is False
        rows.append([m, chi0, n1.number_of_nodes(), lo, exact_txt, hi])
    body = format_table(
        ["id space m", "chi(N_0)=m", "|N_1|", "clique >=", "chi(N_1)", "greedy <="],
        rows,
        title="Neighborhood graphs of the ring: unconditional round/palette trade",
    )
    findings = (
        "chi(N_0(m)) = m exactly — zero-round algorithms need the whole id "
        "space as palette; chi(N_1(m)) = 3 at every computed m — one round "
        "already enables 3 colors on tiny id spaces but never 2 (the parity "
        "obstruction), and Linial's theorem says the required palette only "
        "decays like log log m per extra round — the Omega(log* n) bound "
        "behind every '+O(log* n)' in the paper."
    )
    return ExperimentResult(
        experiment="E15 Linial lower-bound machinery",
        kind="table",
        paper_claim="t-round ring coloring needs chi(N_t(m)) colors; O(1) colors need Omega(log* n) rounds [Lin87]",
        body=body,
        findings=findings,
        data={"rows": rows},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
