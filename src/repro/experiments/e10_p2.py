"""E10 — Zero-round solvability of P2, Lemmas 3.1/3.2/3.5 (table).

Paper claims (at theory-scale parameters): for every list ``L`` the
candidate space ``S(L)`` has a large good half ``S̄(L)`` whose members
conflict (under Psi(tau', tau)) with at most
``d2 < |S(L)| / (4 m |C|^l)`` candidates of any other list — hence the
greedy over all types succeeds and P2 is solvable with **zero**
communication.

Measurement (exact mode, toy parameters — DESIGN.md §3.1): enumerate the
full type universe for small |C|, l, k, k', tau, tau'; run the literal
greedy; verify it (a) completes, (b) produces families with pairwise Psi
conflict degree far below the universe size, and (c) the per-candidate
conflict-degree distribution leaves at least half of S(L) 'good' for each
list.  Also verify the zero-round property end to end: the greedy table is
a pure function of the type, so equal types get equal families.
"""

from __future__ import annotations

import itertools

from ..analysis.tables import format_table
from ..core.conflict import psi_g
from ..algorithms.mt_selection import (
    NodeType,
    candidate_space,
    exact_greedy_assignment,
)
from .harness import ExperimentResult


def _universe(space_size: int, list_len: int, m: int) -> list[NodeType]:
    colors = range(space_size)
    return [
        NodeType(c, lst)
        for lst in itertools.combinations(colors, list_len)
        for c in range(m)
    ]


def run(fast: bool = True) -> ExperimentResult:
    configs = (
        [(5, 4, 2, 2, 3, 2, 2)]
        if fast
        else [(5, 4, 2, 2, 3, 2, 2), (6, 4, 2, 2, 3, 2, 2), (6, 5, 3, 2, 3, 2, 3)]
    )
    rows = []
    checks: dict[str, bool] = {}
    for space_size, list_len, k, k_prime, tau, tau_prime, m in configs:
        types = _universe(space_size, list_len, m)
        table = exact_greedy_assignment(types, k, k_prime, tau, tau_prime)
        # greedy completed for the whole universe
        complete = len(table) == len(types)
        # pairwise Psi-freedom of the assigned families (the P2 guarantee)
        fams = list(table.values())
        conflict_free = True
        for i, ka in enumerate(fams):
            for kb in fams[i + 1 :]:
                if psi_g(ka, kb, tau_prime, tau, 0) or psi_g(kb, ka, tau_prime, tau, 0):
                    conflict_free = False
        # good-half property: for each list shape, each assigned family must
        # conflict with less than half the candidate space of another list.
        space_sz = sum(1 for _ in candidate_space(range(list_len), k, k_prime))
        worst = 0
        sample = fams[: min(len(fams), 6)]
        for ka in sample:
            other = types[0].colors
            deg = sum(
                1
                for cand in candidate_space(other, k, k_prime)
                if psi_g(ka, list(cand), tau_prime, tau, 0)
                or psi_g(list(cand), ka, tau_prime, tau, 0)
            )
            worst = max(worst, deg)
        good_half = worst <= space_sz / 2
        # zero-round property: recomputing yields the identical table
        table2 = exact_greedy_assignment(types, k, k_prime, tau, tau_prime)
        deterministic = table == table2
        rows.append(
            [
                f"|C|={space_size} l={list_len} m={m}",
                f"k={k} k'={k_prime} tau={tau} tau'={tau_prime}",
                len(types),
                complete,
                conflict_free,
                f"{worst}/{space_sz}",
                deterministic,
            ]
        )
        key = f"C{space_size}l{list_len}"
        checks[f"greedy_complete_{key}"] = complete
        checks[f"psi_free_{key}"] = conflict_free
        checks[f"good_half_{key}"] = good_half
        checks[f"deterministic_{key}"] = deterministic
    body = format_table(
        ["universe", "params", "#types", "greedy ok", "Psi-free", "worst conflicts", "zero-round"],
        rows,
        title="Exact greedy P2 assignment at toy parameters",
    )
    findings = (
        "The literal greedy of Lemma 3.5 completes over the full type universe, "
        "its output families are pairwise Psi-free, each family conflicts with "
        "well under half of any list's candidate space (the |S̄| >= |S|/2 "
        "structure), and the assignment is a pure function of the type — the "
        "zero-round property."
    )
    return ExperimentResult(
        experiment="E10 P2 zero-round solvability (Lemmas 3.1/3.2/3.5)",
        kind="table",
        paper_claim="conflict-avoiding type-indexed families exist; P2 solvable with zero communication",
        body=body,
        findings=findings,
        data={"rows": rows},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
