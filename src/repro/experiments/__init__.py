"""Experiments E01-E11 — one per reproduced paper result (see DESIGN.md §4)."""

from .harness import EXPERIMENTS, ExperimentResult, get_runner, run_all
from .sweep import (
    SWEEP_CACHE_SCHEMA,
    CellResult,
    SweepCell,
    SweepSummary,
    cell_key,
    grid,
    run_sweep,
    run_sweep_summarized,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "CellResult",
    "SWEEP_CACHE_SCHEMA",
    "SweepCell",
    "SweepSummary",
    "cell_key",
    "get_runner",
    "grid",
    "run_all",
    "run_sweep",
    "run_sweep_summarized",
]
