"""Experiments E01-E11 — one per reproduced paper result (see DESIGN.md §4)."""

from .harness import EXPERIMENTS, ExperimentResult, get_runner, run_all

__all__ = ["EXPERIMENTS", "ExperimentResult", "get_runner", "run_all"]
