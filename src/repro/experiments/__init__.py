"""Experiments E01-E11 — one per reproduced paper result (see DESIGN.md §4)."""

from .harness import EXPERIMENTS, ExperimentResult, get_runner, run_all
from .sweep import (
    CellResult,
    SweepCell,
    SweepSummary,
    cell_key,
    grid,
    run_sweep,
    run_sweep_summarized,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "CellResult",
    "SweepCell",
    "SweepSummary",
    "cell_key",
    "get_runner",
    "grid",
    "run_all",
    "run_sweep",
    "run_sweep_summarized",
]
