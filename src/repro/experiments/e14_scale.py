"""E14 — Large-scale log* scaling via the vectorized engine (figure).

Paper claim ([Lin87], used by every theorem's "+ O(log* n)" term): the
Linial precoloring's round count is the iterated logarithm of the id
space — essentially constant at any practical n.

The reference simulator charges messages individually and tops out around
n ~ 10^4; the vectorized engine (:mod:`repro.sim.vectorized`, proven
bit-for-bit equivalent by tests) pushes the sweep to n in the hundreds of
thousands, where the log* claim actually has room to show: rounds must
stay <= log*(n) + 1 across three orders of magnitude while wall time grows
roughly linearly in n (the engine does O(q · (n + m)) work per round).
"""

from __future__ import annotations

import time

from ..analysis.bounds import log_star
from ..analysis.tables import fit_exponent, format_table
from ..core.validate import validate_proper_coloring
from ..graphs import random_regular, ring
from ..sim.vectorized import linial_vectorized
from .harness import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    checks: dict[str, bool] = {}
    ns = [1_000, 10_000, 100_000] if fast else [1_000, 10_000, 100_000, 300_000]
    rows = []
    walls = []
    for n in ns:
        g = ring(n)
        t0 = time.perf_counter()
        res, metrics, palette = linial_vectorized(g)
        wall = time.perf_counter() - t0
        ok = n > 20_000 or bool(validate_proper_coloring(g, res))
        rows.append(
            [n, metrics.rounds, log_star(n), palette, f"{wall*1000:.0f} ms", ok]
        )
        checks[f"rounds_within_logstar_n{n}"] = metrics.rounds <= log_star(n) + 1
        if n <= 20_000:
            checks[f"proper_n{n}"] = ok
        walls.append(wall)
    # wall time roughly linear in n (generous band: includes constant setup)
    expo = fit_exponent([float(n) for n in ns], walls)
    checks["wall_near_linear"] = expo <= 1.5

    # a denser family at moderate scale
    g = random_regular(50_000, 8, seed=5)
    res, metrics, _p = linial_vectorized(g)
    checks["regular_50k_rounds_flat"] = metrics.rounds <= log_star(50_000) + 1

    table = format_table(
        ["n (ring)", "rounds", "log* n", "palette", "wall", "validated"],
        rows,
        title="Linial at scale (vectorized engine; equivalence proven vs reference)",
    )
    findings = (
        f"Rounds stay at <= log*(n)+1 from n=10^3 to n={ns[-1]:,} (the log* "
        f"flatness the paper's '+O(log* n)' terms rely on) while wall time "
        f"scales with exponent {expo:.2f} in n — the vectorized engine makes "
        "the asymptotic regime actually observable."
    )
    return ExperimentResult(
        experiment="E14 log* scaling at large n (vectorized)",
        kind="figure",
        paper_claim="Linial precoloring costs O(log* n) rounds — constant-like at any practical n",
        body=table,
        findings=findings,
        data={"rows": rows, "wall_exponent": expo},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
