"""E03 — Defective coloring substrate [Kuh09] (figure).

Paper claim (Section 1): a ``d``-defective coloring with O((Delta/d)^2)
colors is computable in O(log* n) rounds.

Measurement: on a fixed random regular graph, sweep the defect ``d`` and
record the final palette; the palette must shrink quadratically in
``Delta/d`` (log-log fit of palette against Delta/d gives exponent ~ 2, up
to the polylog carried by our single-shot polynomial construction — see
DESIGN.md §3).  All outputs are validated for the defect bound, and rounds
must stay log*-flat.
"""

from __future__ import annotations

from ..analysis.bounds import log_star
from ..analysis.tables import ascii_series, fit_exponent, format_table
from ..graphs import random_regular
from ..algorithms.defective import run_defective_coloring
from .harness import ExperimentResult


def run(fast: bool = True) -> ExperimentResult:
    # n must exceed the d=1 palette (~(2 Delta)^2) for every step to engage.
    delta = 16 if fast else 24
    n = 8 * delta * delta
    g = random_regular(n, delta, seed=11)
    defects = [1, 2, 4, 8] if fast else [1, 2, 4, 8, 16]
    rows = []
    checks: dict[str, bool] = {}
    xs, ys = [], []
    max_rounds = 0
    for d in defects:
        res, metrics, palette = run_defective_coloring(g, d, validate=True)
        rows.append([d, delta / d, palette, res.num_colors(), metrics.rounds])
        checks[f"valid_d{d}"] = True  # run_defective_coloring raises otherwise
        xs.append(delta / d)
        ys.append(float(palette))
        max_rounds = max(max_rounds, metrics.rounds)
    expo = fit_exponent(xs, ys)
    # Our single-shot polynomial construction carries a polynomial-degree
    # factor that inflates the small Delta/d end (palette ~ (deg*Delta/d)^2
    # with deg shrinking as Delta/d grows), flattening the fitted exponent
    # below the ideal 2; the band reflects that documented overhead.
    checks["palette_quadratic_in_delta_over_d"] = 1.3 <= expo <= 2.9
    checks["rounds_log_star_flat"] = max_rounds <= 3 * log_star(n) + 4

    table = format_table(
        ["defect d", "Delta/d", "palette", "colors used", "rounds"],
        rows,
        title=f"d-defective coloring on a {delta}-regular graph (n={n})",
    )
    fig = ascii_series(
        xs,
        {"palette": ys, "(Delta/d)^2": [x * x for x in xs]},
        title="Palette vs Delta/d",
        logy=True,
    )
    findings = (
        f"Palette shrinks with exponent {expo:.2f} in Delta/d (claim: 2); all "
        f"outputs meet the defect bound; rounds stay <= {max_rounds} (log*-flat)."
    )
    return ExperimentResult(
        experiment="E03 defective coloring substrate [Kuh09]",
        kind="figure",
        paper_claim="d-defective O((Delta/d)^2)-coloring in O(log* n) rounds",
        body=table + "\n\n" + fig,
        findings=findings,
        data={"rows": rows, "exponent": expo},
        checks=checks,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
