#!/usr/bin/env python3
"""Regenerate the golden regression corpus (tests/golden/*.json).

Each golden file is a full run record (instance + coloring + metrics) of a
deterministic pipeline on a fixed input.  ``tests/test_golden.py`` re-runs
the pipelines and asserts bit-identical colorings and metric summaries —
locking in determinism and catching accidental behavior drift.

Run after an *intentional* behavior change:  python tools/gen_golden.py
"""

from __future__ import annotations

import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"


def cases():
    """(name, run) pairs; run() -> (instance, result, metrics, info)."""
    import random

    from repro.core import ColorSpace, degree_plus_one_instance, uniform_instance
    from repro.graphs import gnp, random_regular, torus
    from repro.algorithms import (
        congest_delta_plus_one,
        linear_in_delta_coloring,
        solve_list_arbdefective,
        barenboim_coloring,
    )

    def congest_regular():
        g = random_regular(80, 10, seed=42)
        res, m, _rep = congest_delta_plus_one(g)
        return degree_plus_one_instance(g), res, m, {"algorithm": "thm14"}

    def thm13_defect():
        g = torus(6, 6)
        inst = uniform_instance(g, ColorSpace(3), range(3), 1)
        res, m, _rep = solve_list_arbdefective(inst)
        return inst, res, m, {"algorithm": "thm13-d1"}

    def thm13_random_lists():
        g = gnp(40, 0.25, seed=7)
        delta = max(d for _, d in g.degree)
        inst = degree_plus_one_instance(g, ColorSpace(4 * delta), random.Random(8))
        res, m, _rep = solve_list_arbdefective(inst)
        return inst, res, m, {"algorithm": "thm13-lists"}

    def linear_classic():
        g = random_regular(64, 12, seed=9)
        res, m, _rep = linear_in_delta_coloring(g)
        return degree_plus_one_instance(g), res, m, {"algorithm": "be09"}

    def bar16():
        g = random_regular(64, 12, seed=10)
        res, m, rep = barenboim_coloring(g)
        from repro.core import ColorSpace as CS, uniform_instance as UI

        inst = UI(g, CS(rep.palette), range(rep.palette), 0)
        return inst, res, m, {"algorithm": "bar16"}

    return [
        ("congest_regular", congest_regular),
        ("thm13_defect", thm13_defect),
        ("thm13_random_lists", thm13_random_lists),
        ("linear_classic", linear_classic),
        ("bar16", bar16),
    ]


def main(argv: list[str]) -> int:
    from repro.io import save_run

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, run in cases():
        inst, res, metrics, info = run()
        path = GOLDEN_DIR / f"{name}.json"
        save_run(inst, res, metrics, path, info=info)
        print(f"wrote {path.name}: {len(res.assignment)} nodes, "
              f"{metrics.rounds} rounds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
