"""Maintaining a schedule as the network changes.

The coloring literature's dynamic motivation ([Bar16]: "...in static,
dynamic, and faulty networks") made runnable: start from a valid TDMA-like
list defective coloring, then stream edge insertions and deletions (radios
moving in and out of range).  Deletions are free; each insertion repairs
at most its two endpoints, and untouched radios keep their slots.

Run:  python examples/dynamic_network.py
"""

import random

from repro.core import ColorSpace, uniform_instance
from repro.exceptions import ConditionViolation
from repro.graphs import gnp
from repro.algorithms import solve_ldc_potential
from repro.algorithms.dynamic import DynamicColoring


def main() -> None:
    rng = random.Random(29)
    g = gnp(40, 0.12, seed=30)
    delta = max(d for _, d in g.degree)
    slots = delta + 6  # headroom for future insertions
    inst = uniform_instance(g, ColorSpace(slots), range(slots), 1)
    base = solve_ldc_potential(inst)
    dyn = DynamicColoring(inst, base)
    print(f"initial network: n={g.number_of_nodes()}, "
          f"m={g.number_of_edges()}, slots={slots}, valid={dyn.check()}")

    nodes = sorted(g.nodes)
    inserted = deleted = repaired = skipped = 0
    for step in range(40):
        u, v = rng.sample(nodes, 2)
        if dyn.instance.graph.has_edge(u, v):
            dyn.update(delete=[(u, v)])
            deleted += 1
        else:
            try:
                report = dyn.update(insert=[(u, v)])
            except ConditionViolation:
                skipped += 1  # that node's slot list is exhausted
                continue
            inserted += 1
            repaired += report.recolored_nodes
        assert dyn.check()

    print(f"after 40 events: +{inserted} edges, -{deleted} edges, "
          f"{skipped} rejected (list budget), "
          f"{repaired} radios ever recolored")
    print(f"repair traffic: {dyn.metrics.rounds} rounds, "
          f"{dyn.metrics.total_bits} bits total")
    print(f"final schedule still valid: {dyn.check()}")


if __name__ == "__main__":
    main()
