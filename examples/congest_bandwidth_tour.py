"""A tour of the paper's CONGEST story: message sizes across algorithms.

Reproduces, on one graph, the comparison that motivates Theorem 1.4: the
prior LOCAL-model list-coloring approach ships whole color lists
(Theta(Delta log Delta) bits per message), while the paper's pipeline —
and each recursion level of Corollary 4.2 — stays near the O(log n)
budget.  Also shows the time/message trade-off of the reduction.

Run:  python examples/congest_bandwidth_tour.py
"""

import random

from repro.core import ColorSpace, degree_plus_one_instance
from repro.graphs import random_regular
from repro.algorithms import (
    congest_degree_plus_one,
    list_exchange_coloring,
    randomized_list_coloring,
)


def main() -> None:
    delta, n = 16, 128
    graph = random_regular(n, delta, seed=3)
    # lists drawn from a poly(Delta) color space, as in the paper
    instance = degree_plus_one_instance(
        graph, ColorSpace(delta * delta), random.Random(5)
    )

    rows = []
    _res, m, _rep = congest_degree_plus_one(instance, reduction_r=0)
    rows.append(("Thm 1.4 (no reduction)", m.rounds, m.max_message_bits, m.bandwidth_limit))
    for r in (2, 3):
        _res, m, _rep = congest_degree_plus_one(instance, reduction_r=r)
        rows.append((f"Thm 1.4 + Cor 4.2 (r={r})", m.rounds, m.max_message_bits, m.bandwidth_limit))
    _res, m = list_exchange_coloring(instance, seed=1)
    rows.append(("FHK/MT message profile", m.rounds, m.max_message_bits, m.bandwidth_limit))
    _res, m = randomized_list_coloring(instance, seed=1)
    rows.append(("randomized Luby-style", m.rounds, m.max_message_bits, m.bandwidth_limit))

    print(f"(degree+1)-list coloring, n={n}, Delta={delta}, |C|={delta * delta}")
    print(f"{'algorithm':28s} {'rounds':>7s} {'max msg bits':>13s} {'budget':>7s}")
    for name, rounds, bits, budget in rows:
        flag = "OK" if budget is None or bits <= budget else "OVER"
        print(f"{name:28s} {rounds:7d} {bits:13d} {budget or 0:7d} {flag}")


if __name__ == "__main__":
    main()
