"""TDMA slot assignment in a wireless sensor network.

The classic application behind distributed coloring (and the paper's
motivation for CONGEST algorithms): radios that share a communication link
must not transmit in the same time slot.  Hardware duty cycles restrict
each radio to a subset of slots (-> a *list* coloring problem) and
capture-effect decoding tolerates a bounded number of same-slot neighbors
(-> per-slot *defects*).

The scenario logic lives in :mod:`repro.scenarios.tdma` (tested in
tests/test_scenarios.py); this script just drives it.

Run:  python examples/tdma_scheduling.py
"""

from repro.graphs import torus
from repro.scenarios import TDMAConfig
from repro.scenarios.tdma import schedule


def main() -> None:
    topology = torus(8, 8)
    config = TDMAConfig(frame_slots=24, seed=7)
    result = schedule(topology, config)

    print(f"radios: {topology.number_of_nodes()}, "
          f"links: {topology.number_of_edges()}, "
          f"frame: {config.frame_slots} slots")
    print(f"schedule valid: {result.valid} "
          f"(max interferers seen {result.max_interferers})")
    print(f"rounds: {result.metrics.rounds}, "
          f"max message: {result.metrics.max_message_bits} bits, "
          f"total traffic: {result.metrics.total_bits} bits")
    slot, count = result.busiest_slot
    print(f"slots used: {result.slots_used}/{config.frame_slots}, "
          f"busiest slot {slot} carries {count} radios: "
          f"{result.radios_in_slot(slot)[:8]}...")


if __name__ == "__main__":
    main()
