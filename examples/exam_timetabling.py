"""Exam timetabling from a student-enrollment table.

Exams sharing students must not share slots — except that small seminars
may clash once when overflow proctoring exists (per-slot *defects*), while
big first-year exams get dedicated slots.  Lecturer availability restricts
each exam to a subset of slots (*lists*).  The scheduler is the
Theorem 1.3 transformation; scenario logic lives in
:mod:`repro.scenarios.timetable`.

Run:  python examples/exam_timetabling.py
"""

from repro.scenarios import TimetableConfig, conflict_graph, random_enrollments, timetable


def main() -> None:
    enrollments = random_enrollments(
        students=200, exams=30, per_student=4, seed=17
    )
    graph = conflict_graph(enrollments)
    delta = max(d for _, d in graph.degree)
    print(f"exams: {graph.number_of_nodes()}, "
          f"conflicting pairs: {graph.number_of_edges()}, "
          f"max conflict degree: {delta}")

    config = TimetableConfig(slots=36, seed=18)
    tt = timetable(enrollments, config)
    print(f"timetable valid: {tt.valid} "
          f"(worst slot clashes: {tt.max_clashes})")
    print(f"rounds: {tt.metrics.rounds}, "
          f"max message: {tt.metrics.max_message_bits} bits")
    used = sorted(tt.per_slot_load.items())
    print(f"slots used: {len(used)}/{config.slots}")
    busiest = max(used, key=lambda kv: kv[1])
    print(f"busiest slot {busiest[0]} holds {busiest[1]} exams")
    sample = sorted(tt.slot_of.items())[:6]
    print("sample:", ", ".join(f"exam {e} -> slot {s}" for e, s in sample))


if __name__ == "__main__":
    main()
