"""A guided tour of the paper, result by result, in runnable form.

Walks the paper's storyline on one small working set, printing a short
narrative with live numbers for each step:

1. the existence lemmas (Appendix A) and their tightness on cliques;
2. the substrates the algorithms stand on (Linial, defective,
   arbdefective colorings);
3. the OLDC problem and Theorem 1.1's algorithm;
4. Theorem 1.2's color-space reduction trade-off;
5. Theorem 1.3's transformation and Theorem 1.4's CONGEST pipeline;
6. the regime map of Section 1.1.

Run:  python examples/paper_walkthrough.py
"""

import random

from repro.analysis.regimes import winner
from repro.core import (
    ColorSpace,
    ListDefectiveInstance,
    degree_plus_one_instance,
    same_list_clique,
    scaled_budget_instance,
    uniform_instance,
    validate_ldc,
    validate_oldc,
    validate_proper_coloring,
)
from repro.core.conditions import ldc_exists_condition
from repro.graphs import gnp, random_low_outdegree_digraph, random_regular
from repro.algorithms import (
    arbdefective_coloring,
    congest_delta_plus_one,
    run_defective_coloring,
    run_linial,
    solve_ldc_potential,
    solve_oldc_main,
    solve_with_reduction,
)


def step(title: str) -> None:
    print(f"\n== {title} " + "=" * max(1, 66 - len(title)))


def main() -> None:
    step("1. Existence (Lemmas A.1/A.2) and tightness")
    feasible = same_list_clique(9, colors=5, defect=1)  # 5*2 > 8
    coloring = solve_ldc_potential(feasible)
    print(f"K_9, 5 colors of defect 1 (budget 10 > 8): solved, "
          f"valid={bool(validate_ldc(feasible, coloring))}")
    boundary = same_list_clique(9, colors=4, defect=1)  # 4*2 = 8: infeasible
    print(f"K_9, 4 colors of defect 1 (budget 8 = Delta): "
          f"Eq.(1) holds = {ldc_exists_condition(boundary)} — the tight case")

    step("2. Substrates: Linial / defective / arbdefective")
    g = random_regular(2000, 12, seed=1)
    pre, m_lin, palette = run_linial(g)
    print(f"[Lin87] on a 12-regular graph (n=2000): {m_lin.rounds} rounds, "
          f"palette {palette} = O(Delta^2)")
    _dres, _dm, dpal = run_defective_coloring(g, defect=4)
    print(f"[Kuh09] 4-defective coloring: palette {dpal} "
          f"(vs {palette} proper)")
    _ares, _am, q = arbdefective_coloring(g, 2, mode="tight")
    print(f"2-arbdefective coloring: floor(Delta/3)+1 = {q} colors")

    step("3. OLDC and Theorem 1.1")
    rng = random.Random(2)
    base = gnp(60, 0.15, seed=3)
    dg = random_low_outdegree_digraph(base, seed=4)
    outdeg = {v: max(1, dg.out_degree(v)) for v in dg.nodes}
    beta = max(outdeg.values())
    space = ColorSpace(40 * beta * beta + 128)
    und = scaled_budget_instance(base, space, 2.0, 35.0, 2, rng,
                                 directed_outdegrees=outdeg)
    inst = ListDefectiveInstance(dg, space, und.lists, und.defects)
    pre2, _m, _p = run_linial(base)
    res, m, rep = solve_oldc_main(inst, pre2.assignment)
    print(f"OLDC instance: beta={beta}, |C|={space.size}; Theorem 1.1 "
          f"solves it in {m.rounds} rounds (O(log beta)), "
          f"valid={bool(validate_oldc(inst, res))}")

    step("4. Theorem 1.2: trade rounds for message size")
    def solver(i, init):
        return solve_oldc_main(i, init)
    res_r, m_r, _rep_r = solve_with_reduction(inst, pre2.assignment, solver, p=16)
    print(f"direct: {m.rounds} rounds, {m.max_message_bits}-bit messages; "
          f"behind a p=16 reduction: {m_r.rounds} rounds, "
          f"{m_r.max_message_bits}-bit messages")

    step("5. Theorems 1.3/1.4: (Delta+1)-coloring in CONGEST")
    res14, m14, rep14 = congest_delta_plus_one(g)
    inst_dp1 = degree_plus_one_instance(g)
    print(f"(Delta+1)-coloring of the 12-regular graph: "
          f"{res14.num_colors()} colors in {m14.rounds} rounds; "
          f"max message {m14.max_message_bits} bits "
          f"(budget {m14.bandwidth_limit}); "
          f"valid={bool(validate_ldc(inst_dp1, res14))}")

    step("6. Section 1.1's regime map")
    for delta, n in [(8, 2**20), (64, 2**16), (4096, 2**10)]:
        print(f"Delta={delta:5d}, n=2^{n.bit_length()-1:2d}: "
              f"fastest reference = {winner(delta, n)}")
    print("\n(the middle row is the gap Theorem 1.4 closes)")


if __name__ == "__main__":
    main()
