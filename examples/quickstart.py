"""Quickstart: (Delta+1)-color a random graph with the paper's CONGEST
algorithm (Theorem 1.4) and inspect the run.

Run:  python examples/quickstart.py
"""

from repro.core import degree_plus_one_instance, validate_ldc
from repro.graphs import random_regular
from repro.algorithms import congest_delta_plus_one, randomized_list_coloring


def main() -> None:
    # A 10-regular graph on 120 nodes.
    graph = random_regular(120, 10, seed=42)
    delta = max(d for _, d in graph.degree)

    # Theorem 1.4: deterministic (degree+1)-list coloring in CONGEST.
    coloring, metrics, report = congest_delta_plus_one(graph)
    print(f"graph: n={graph.number_of_nodes()}, Delta={delta}")
    print(f"colors used: {coloring.num_colors()} (palette size {delta + 1})")
    print(f"rounds: {metrics.rounds}")
    from repro.sim import congest_bandwidth

    budget = congest_bandwidth(graph.number_of_nodes())
    print(
        f"max message: {metrics.max_message_bits} bits "
        f"(CONGEST budget {budget} bits, "
        f"compliant: {metrics.compliant_with(graph.number_of_nodes())})"
    )
    print(f"stages: {report.stages}, inner OLDC runs: {report.oldc_runs}")

    # Cross-check with the independent validator.
    instance = degree_plus_one_instance(graph)
    check = validate_ldc(instance, coloring)
    print(f"valid proper list coloring: {bool(check)}")

    # Compare with the randomized Luby-style baseline.
    _rand, rand_metrics = randomized_list_coloring(instance, seed=1)
    print(
        f"randomized baseline: {rand_metrics.rounds} rounds, "
        f"{rand_metrics.max_message_bits}-bit messages "
        "(randomized — the paper's algorithm is deterministic)"
    )


if __name__ == "__main__":
    main()
