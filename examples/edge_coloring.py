"""Distributed edge coloring via the line graph.

The paper's introduction highlights edge colorings (line graphs) as the
arena where defective/list-defective techniques produced
polylog-Delta-round algorithms [BE11a, BKO20, BBKO22].  The reduction is
standard: a (degree+1)-list *edge* coloring of ``G`` is a (degree+1)-list
vertex coloring of the line graph ``L(G)`` — which this repository solves
with the Theorem 1.4 pipeline, giving a proper edge coloring with at most
``2 Delta(G) - 1`` colors over O(log n)-bit messages.

Run:  python examples/edge_coloring.py
"""

from repro.graphs import (
    edge_coloring_from_line,
    edge_degree_plus_one_instance,
    random_regular,
    validate_edge_coloring,
)
from repro.algorithms import congest_degree_plus_one


def main() -> None:
    graph = random_regular(48, 6, seed=13)
    delta = max(d for _, d in graph.degree)
    instance, edge_of = edge_degree_plus_one_instance(graph)
    print(
        f"graph: n={graph.number_of_nodes()}, m={graph.number_of_edges()}, "
        f"Delta={delta}; line graph Delta_L={instance.max_degree}"
    )

    result, metrics, report = congest_degree_plus_one(instance)
    edge_colors = edge_coloring_from_line(result, edge_of)
    check = validate_edge_coloring(graph, edge_colors)
    used = len(set(edge_colors.values()))
    print(f"proper edge coloring: {bool(check)}")
    print(f"colors used: {used} (greedy bound 2*Delta-1 = {2 * delta - 1}, "
          f"Vizing bound Delta+1 = {delta + 1})")
    print(f"rounds: {metrics.rounds}, max message: "
          f"{metrics.max_message_bits} bits")
    sample = sorted(edge_colors.items())[:5]
    print("sample:", ", ".join(f"{e}->{c}" for e, c in sample))


if __name__ == "__main__":
    main()
