"""Every coloring algorithm in the repository, head to head.

Runs all registered (Delta+1)-capable algorithms on the same graph and
prints a uniform scorecard (colors / rounds / bits / CONGEST compliance),
then does it again on a larger, denser graph so the asymptotics start to
separate the field.  The same comparison is available from the CLI:

    repro-cli compare --family random_regular --n 96 --degree 12

Run:  python examples/algorithm_shootout.py
"""

from repro.analysis.compare import compare_algorithms, render_comparison
from repro.graphs import random_regular


def main() -> None:
    for n, degree in [(48, 8), (192, 24)]:
        graph = random_regular(n, degree, seed=99)
        rows = compare_algorithms(graph)
        print(render_comparison(graph, rows))
        fastest = rows[0]
        tightest = min(rows, key=lambda r: (r.colors, r.rounds))
        print(
            f"-> fastest: {fastest.algorithm} ({fastest.rounds} rounds); "
            f"tightest palette: {tightest.algorithm} "
            f"({tightest.colors} colors)\n"
        )


if __name__ == "__main__":
    main()
