"""Cellular frequency assignment with per-frequency interference budgets.

A hub-and-fringe radio topology (a macro cell surrounded by small-cell
clusters): cheap fringe transmitters need interference-free channels
(defect 0) while the macro hub's beamforming tolerates several co-channel
neighbors on its wideband frequencies — the heterogeneous-defect regime
where *list defective* coloring beats both plain list coloring and plain
defective coloring.

The scenario logic lives in :mod:`repro.scenarios.frequency` (tested in
tests/test_scenarios.py); this script solves the instance both
sequentially (Lemma A.1 made executable) and distributedly (Theorem 1.3).

Run:  python examples/frequency_assignment.py
"""

from repro.graphs import hub_and_fringe
from repro.scenarios import FrequencyConfig
from repro.scenarios.frequency import plan


def main() -> None:
    topology = hub_and_fringe(hub_degree=18, fringe_cliques=6, clique_size=4)
    config = FrequencyConfig(channels=48, hub_channels=4, hub_defect=5, seed=11)

    seq = plan(topology, hubs={0}, config=config, sequential=True)
    print(f"transmitters: {topology.number_of_nodes()}, "
          f"hub degree {topology.degree(0)}")
    print(f"Eq.(1) holds: {seq.audit.eq1_ldc_exists}; "
          f"Eq.(2) holds: {seq.audit.eq2_arbdefective_exists}")
    print(f"sequential (Lemma A.1) valid: {seq.valid}")

    dist = plan(topology, hubs={0}, config=config)
    print(f"distributed (Theorem 1.3) valid: {dist.valid}")
    print(f"rounds: {dist.metrics.rounds}, "
          f"max message: {dist.metrics.max_message_bits} bits")
    print(f"hub assigned channel {dist.hub_channel}; co-channel neighbors: "
          f"{dist.hub_co_channel} (tolerates {config.hub_defect})")


if __name__ == "__main__":
    main()
