"""Direct OLDC usage: build a custom oriented list defective instance and
solve it three ways.

Shows the low-level API the other examples hide: hand-built color lists
and per-color defect functions on a directed graph, solved with (a) the
basic Lemma 3.6 algorithm, (b) the main Theorem 1.1 algorithm, and (c) the
main algorithm behind Theorem 1.2's color-space reduction — with the
per-run audit reports and an execution trace.

Run:  python examples/oldc_playground.py
"""

import random

from repro.core import ColorSpace, ListDefectiveInstance, validate_oldc
from repro.graphs import gnp, random_low_outdegree_digraph
from repro.algorithms import (
    run_linial,
    solve_oldc_basic,
    solve_oldc_main,
    solve_with_reduction,
)


def build_instance(seed: int):
    """A digraph whose hubs hold few high-defect colors and whose leaves
    hold many zero-defect colors."""
    rng = random.Random(seed)
    g = gnp(40, 0.18, seed=seed)
    dg = random_low_outdegree_digraph(g, seed=seed + 1)
    space = ColorSpace(600)
    lists, defects = {}, {}
    for v in dg.nodes:
        beta = max(1, dg.out_degree(v))
        if beta >= 4:  # hub: 2*beta colors, defect ~beta/2 each
            colors = sorted(rng.sample(range(600), 8 * beta))
            lists[v] = tuple(colors)
            defects[v] = {x: beta // 2 for x in colors}
        else:  # leaf: many clean colors
            colors = sorted(rng.sample(range(600), 40 * beta * beta))
            lists[v] = tuple(colors)
            defects[v] = {x: 0 for x in colors}
    return g, ListDefectiveInstance(dg, space, lists, defects)


def main() -> None:
    g, inst = build_instance(seed=21)
    print(f"digraph: n={inst.n}, beta={inst.max_outdegree}, "
          f"|C|={inst.space.size}, Lambda={inst.max_list_size}")

    pre, _m, _p = run_linial(g)

    res_b, m_b, rep_b = solve_oldc_basic(inst, pre.assignment)
    print(f"basic (Lemma 3.6):  rounds={m_b.rounds:3d} "
          f"bits={m_b.max_message_bits:5d} "
          f"valid={bool(validate_oldc(inst, res_b))} "
          f"h={rep_b.h} guarantee_met={rep_b.guarantee_met}")

    res_m, m_m, rep_m = solve_oldc_main(inst, pre.assignment)
    print(f"main (Theorem 1.1): rounds={m_m.rounds:3d} "
          f"bits={m_m.max_message_bits:5d} "
          f"valid={bool(validate_oldc(inst, res_m))} "
          f"case_ii={rep_m.case_ii_nodes}/{inst.n} max_risk={rep_m.max_risk}")

    def base(instance, init):
        return solve_oldc_main(instance, init)

    res_r, m_r, rep_r = solve_with_reduction(inst, pre.assignment, base, p=25)
    print(f"main + Thm 1.2 p=25: rounds={m_r.rounds:3d} "
          f"bits={m_r.max_message_bits:5d} "
          f"valid={bool(validate_oldc(inst, res_r))} levels={rep_r.levels}")

    # how defects were actually spent
    worst = max(
        (
            sum(
                1
                for u in inst.graph.successors(v)
                if res_m.assignment[u] == res_m.assignment[v]
            ),
            v,
        )
        for v in inst.graph.nodes
    )
    v = worst[1]
    print(f"busiest node {v}: {worst[0]} same-colored out-neighbors, "
          f"budget was {inst.defects[v][res_m.assignment[v]]}")


if __name__ == "__main__":
    main()
